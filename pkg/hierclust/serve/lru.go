package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// lruCache is a fixed-capacity LRU map from scenario cache key to rendered
// result bytes. hcserve's workload is many clients re-POSTing the same
// scenario documents (dashboards, CI gates), so a small cache absorbs the
// expensive trace→cluster→evaluate work for the hot set.
type lruCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	byKK      map[string]*list.Element
	evictions atomic.Int64
}

type lruEntry struct {
	key string
	val []byte
}

// newLRU returns a cache holding up to capacity entries; capacity <= 0
// disables caching (every Get misses).
func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), byKK: map[string]*list.Element{}}
}

// Get returns the cached value and marks it most recently used.
func (c *lruCache) Get(key string) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKK[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts or refreshes a value, evicting the least recently used entry
// when over capacity. The value is copied on insert, so the cache owns its
// bytes outright — a caller reusing or mutating its slice afterwards
// cannot corrupt what later requests are served.
func (c *lruCache) Put(key string, val []byte) {
	if c.cap <= 0 {
		return
	}
	val = append([]byte(nil), val...)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKK[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.byKK[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKK, oldest.Value.(*lruEntry).key)
		c.evictions.Add(1)
	}
}

// Evictions returns how many entries capacity pressure has pushed out
// since construction.
func (c *lruCache) Evictions() int64 { return c.evictions.Load() }

// Len returns the live entry count.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
