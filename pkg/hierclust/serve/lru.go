package serve

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity LRU map from scenario cache key to rendered
// result bytes. hcserve's workload is many clients re-POSTing the same
// scenario documents (dashboards, CI gates), so a small cache absorbs the
// expensive trace→cluster→evaluate work for the hot set.
type lruCache struct {
	mu   sync.Mutex
	cap  int
	ll   *list.List // front = most recently used
	byKK map[string]*list.Element
}

type lruEntry struct {
	key string
	val []byte
}

// newLRU returns a cache holding up to capacity entries; capacity <= 0
// disables caching (every Get misses).
func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), byKK: map[string]*list.Element{}}
}

// Get returns the cached value and marks it most recently used.
func (c *lruCache) Get(key string) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKK[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts or refreshes a value, evicting the least recently used entry
// when over capacity. Values are stored as-is; callers must not mutate
// them afterwards.
func (c *lruCache) Put(key string, val []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKK[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.byKK[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKK, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the live entry count.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
