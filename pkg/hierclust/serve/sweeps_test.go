package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hierclust/internal/faultinject"
)

// sweepDoc renders a 2×2 machines × strategies sweep over a synthetic
// base — two machine sizes, two strategy sets, four cells, with the two
// cells of each machine size sharing one trace (dedup ratio 0.25).
func sweepDoc(name string) string {
	return fmt.Sprintf(`{
		"name": %q,
		"base": {
			"name": "grid-base",
			"machine": {"nodes": 16},
			"placement": {"ranks": 64, "procs_per_node": 4},
			"trace": {"source": "synthetic", "iterations": 10}
		},
		"axes": {
			"machines": [{"nodes": 16}, {"nodes": 8, "ranks": 32, "procs_per_node": 4}],
			"strategies": [[{"kind": "naive", "size": 8}], [{"kind": "hierarchical"}]]
		}
	}`, name)
}

// submitSweep posts a sweep and returns the accepted job's status doc.
func submitSweep(t *testing.T, url, body string) *sweepStatusDoc {
	t.Helper()
	resp, err := http.Post(url+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("sweep submit status = %d: %s", resp.StatusCode, b)
	}
	var doc sweepStatusDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.ID == "" || doc.State != "running" {
		t.Fatalf("accepted job doc = %+v", doc)
	}
	return &doc
}

// pollSweep polls GET /v1/sweeps/{id} until the job leaves "running".
func pollSweep(t *testing.T, url, id string) *sweepStatusDoc {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var doc sweepStatusDoc
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if doc.State != "running" {
			return &doc
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s still running: %+v", id, doc)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sweepResults streams GET /v1/sweeps/{id}/results to completion.
func sweepResults(t *testing.T, url, id string) (*http.Response, []SweepCellLine) {
	t.Helper()
	resp, err := http.Get(url + "/v1/sweeps/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("results status = %d: %s", resp.StatusCode, b)
	}
	var lines []SweepCellLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line SweepCellLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, lines
}

// TestSweepJobLifecycle drives the async job API end to end: submit,
// poll to completion, stream ordered NDJSON results, and verify a cell's
// document is byte-identical to — and cross-warms the result cache of —
// the single-evaluate endpoint.
func TestSweepJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t)

	doc := submitSweep(t, ts.URL, sweepDoc("lifecycle"))
	if doc.Cells.Total != 4 {
		t.Fatalf("planned %d cells, want 4", doc.Cells.Total)
	}
	if doc.Plan.DedupRatio != 0.25 {
		t.Fatalf("dedup ratio = %g, want 0.25 (2 trace builds + 4 partitions over 8 refs)", doc.Plan.DedupRatio)
	}
	if doc.Plan.TraceBuilds != 2 || doc.Plan.TraceRefs != 4 {
		t.Fatalf("planned trace builds/refs = %d/%d, want 2/4", doc.Plan.TraceBuilds, doc.Plan.TraceRefs)
	}

	final := pollSweep(t, ts.URL, doc.ID)
	if final.State != "completed" || final.Cells.Completed != 4 || final.Cells.Failed != 0 {
		t.Fatalf("final status = %+v, want completed 4/0", final)
	}

	resp, lines := sweepResults(t, ts.URL, doc.ID)
	if got := resp.Header.Get("X-Hierclust-Sweep-Cells"); got != "4" {
		t.Fatalf("X-Hierclust-Sweep-Cells = %q, want 4", got)
	}
	if got := resp.Header.Get("X-Hierclust-Sweep-Dedup"); got != "0.2500" {
		t.Fatalf("X-Hierclust-Sweep-Dedup = %q, want 0.2500", got)
	}
	wantNames := []string{"grid-base/m0/s0", "grid-base/m0/s1", "grid-base/m1/s0", "grid-base/m1/s1"}
	if len(lines) != 4 {
		t.Fatalf("streamed %d lines, want 4", len(lines))
	}
	for i, line := range lines {
		if line.Index != i || line.Scenario != wantNames[i] {
			t.Fatalf("line %d = index %d scenario %q, want %d %q", i, line.Index, line.Scenario, i, wantNames[i])
		}
		if line.Status != http.StatusOK || len(line.Result) == 0 {
			t.Fatalf("line %d status %d error %q", i, line.Status, line.Error)
		}
	}

	// Byte-identity + cache cross-warming: hand-write cell m0/s0's
	// scenario and POST it to /v1/evaluate — it must hit the result cache
	// the sweep warmed, and (re-compacted) match the sweep line exactly.
	hand := `{
		"name": "grid-base/m0/s0",
		"machine": {"nodes": 16},
		"placement": {"ranks": 64, "procs_per_node": 4},
		"trace": {"source": "synthetic", "iterations": 10},
		"strategies": [{"kind": "naive", "size": 8}]
	}`
	evResp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(hand))
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	if evResp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(evResp.Body)
		t.Fatalf("evaluate status = %d: %s", evResp.StatusCode, b)
	}
	if got := evResp.Header.Get("X-Hierclust-Cache"); got != "hit" {
		t.Fatalf("hand-written cell scenario cache state = %q, want hit (sweep should have warmed it)", got)
	}
	pretty, err := io.ReadAll(evResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, pretty); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(compact.Bytes(), []byte(lines[0].Result)) {
		t.Fatalf("sweep cell document diverges from POST /v1/evaluate:\n%s\nvs\n%s", lines[0].Result, compact.Bytes())
	}

	text := scrapeMetrics(t, ts.URL)
	metricLine(t, text, "hcserve_sweep_jobs_total 1")
	metricLine(t, text, "hcserve_sweep_cells_total 4")
	metricLine(t, text, "hcserve_sweep_cells_completed_total 4")
	metricLine(t, text, "hcserve_sweep_cell_cache_hits_total 0")
	metricLine(t, text, "hcserve_sweep_node_builds_total 6")
	metricLine(t, text, "hcserve_sweep_node_refs_total 8")
	metricLine(t, text, "hcserve_sweeps_running 0")
	metricLine(t, text, "hcserve_evaluation_slots 4")
	metricLine(t, text, "hcserve_queued_background 0")
}

// TestSweepResubmitFullCacheHit: re-submitting a completed sweep serves
// every cell from the result cache without evaluating anything.
func TestSweepResubmitFullCacheHit(t *testing.T) {
	_, ts := newTestServer(t)

	first := submitSweep(t, ts.URL, sweepDoc("warm"))
	if got := pollSweep(t, ts.URL, first.ID); got.State != "completed" {
		t.Fatalf("first run state = %q", got.State)
	}

	second := submitSweep(t, ts.URL, sweepDoc("warm-again"))
	final := pollSweep(t, ts.URL, second.ID)
	if final.State != "completed" || final.Cells.Cached != 4 || final.Cells.Completed != 0 {
		t.Fatalf("resubmit status = %+v, want 4 cached / 0 evaluated", final)
	}
	_, lines := sweepResults(t, ts.URL, second.ID)
	for i, line := range lines {
		if line.Cache != "hit" {
			t.Fatalf("resubmit line %d cache = %q, want hit", i, line.Cache)
		}
	}
}

// TestSweepDeleteCancelsRunning: with the only evaluation slot occupied,
// a running sweep's cells block in background admission; DELETE cancels
// the job, every line terminates with 499, and a second DELETE of the
// finished job removes it (404 afterwards).
func TestSweepDeleteCancelsRunning(t *testing.T) {
	s := New(Options{CacheSize: -1, MaxConcurrent: 1})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	adm, release := s.lim.acquire(context.Background(), "occupier", false)
	if adm != admitted {
		t.Fatal("could not occupy the evaluation slot")
	}
	defer release()

	doc := submitSweep(t, ts.URL, sweepDoc("doomed"))

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+doc.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE running job status = %d, want 202", dresp.StatusCode)
	}

	final := pollSweep(t, ts.URL, doc.ID)
	if final.State != "cancelled" {
		t.Fatalf("state after DELETE = %q, want cancelled", final.State)
	}
	_, lines := sweepResults(t, ts.URL, doc.ID)
	if len(lines) != 4 {
		t.Fatalf("cancelled job streamed %d lines, want 4", len(lines))
	}
	for i, line := range lines {
		if line.Status != statusClientClosed {
			t.Fatalf("cancelled line %d status = %d, want %d", i, line.Status, statusClientClosed)
		}
	}

	dresp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE finished job status = %d, want 204", dresp2.StatusCode)
	}
	gresp, err := http.Get(ts.URL + "/v1/sweeps/" + doc.ID)
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET removed job status = %d, want 404", gresp.StatusCode)
	}
}

// TestSweepChaosFaultResumeOverHTTP is the kill-mid-sweep acceptance
// drill at the API level: an injected fault fails part of the first job;
// after disarming, resubmitting the same sweep completes only the
// remaining cells — the survivors are cache hits.
func TestSweepChaosFaultResumeOverHTTP(t *testing.T) {
	_, ts := newTestServer(t)

	faultinject.Seed(7)
	faultinject.Arm("sweep.cell", faultinject.Fault{Kind: faultinject.KindError, P: 0.5})
	first := submitSweep(t, ts.URL, sweepDoc("chaos"))
	firstFinal := pollSweep(t, ts.URL, first.ID)
	faultinject.DisarmAll()
	if firstFinal.Cells.Failed == 0 || firstFinal.Cells.Completed == 0 {
		t.Fatalf("chaos run completed/failed = %d/%d, want both nonzero (pick a new seed)",
			firstFinal.Cells.Completed, firstFinal.Cells.Failed)
	}
	if firstFinal.State != "completed" {
		t.Fatalf("chaos run state = %q (partial cell failure is per-line, not job-level)", firstFinal.State)
	}

	second := submitSweep(t, ts.URL, sweepDoc("chaos-resume"))
	final := pollSweep(t, ts.URL, second.ID)
	if final.State != "completed" || final.Cells.Failed != 0 {
		t.Fatalf("resume run = %+v, want clean completion", final)
	}
	if final.Cells.Cached != firstFinal.Cells.Completed {
		t.Fatalf("resume served %d cells from cache, want the %d that survived",
			final.Cells.Cached, firstFinal.Cells.Completed)
	}
	if final.Cells.Completed != firstFinal.Cells.Failed {
		t.Fatalf("resume evaluated %d cells, want exactly the %d that failed",
			final.Cells.Completed, firstFinal.Cells.Failed)
	}
}

// TestSweepSubmitRejections pins the request-scoped failure modes:
// malformed JSON, server-side file paths, over-bound grids, unknown job
// ids, and the concurrent-job bound.
func TestSweepSubmitRejections(t *testing.T) {
	s := New(Options{CacheSize: -1, MaxConcurrent: 1, MaxSweepCells: 2, MaxConcurrentSweeps: 1})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := post(`{"not a sweep`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status = %d, want 400", resp.StatusCode)
	}
	fileSweep := `{"name":"f","base":{"name":"b","machine":{"nodes":8},
		"placement":{"ranks":32,"procs_per_node":4},
		"trace":{"source":"file","path":"/etc/passwd"},
		"strategies":[{"kind":"naive","size":8}]},"axes":{}}`
	if resp := post(fileSweep); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("file-source sweep status = %d, want 400", resp.StatusCode)
	}
	if resp := post(sweepDoc("too-big")); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-bound sweep status = %d, want 413 (4 cells > MaxSweepCells 2)", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/v1/sweeps/deadbeef"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job status = %d, want 404", resp.StatusCode)
		}
	}

	// Concurrency bound: occupy the slot so the first job stays running,
	// then a second submission must shed with 429 + Retry-After.
	adm, release := s.lim.acquire(context.Background(), "occupier", false)
	if adm != admitted {
		t.Fatal("could not occupy the evaluation slot")
	}
	small := `{"name":"one","base":{"name":"b","machine":{"nodes":8},
		"placement":{"ranks":32,"procs_per_node":4},
		"trace":{"source":"synthetic"},
		"strategies":[{"kind":"naive","size":8}]},"axes":{}}`
	doc := submitSweep(t, ts.URL, small)
	resp := post(small)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second concurrent sweep status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	release()
	if final := pollSweep(t, ts.URL, doc.ID); final.State != "completed" {
		t.Fatalf("first job state = %q after slot release", final.State)
	}
}

// TestSweepDrainCancelsJobs: Drain cancels running sweep jobs (their
// lines report 503) and new submissions answer 503.
func TestSweepDrainCancelsJobs(t *testing.T) {
	s := New(Options{CacheSize: -1, MaxConcurrent: 1})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	adm, release := s.lim.acquire(context.Background(), "occupier", false)
	if adm != admitted {
		t.Fatal("could not occupy the evaluation slot")
	}
	defer release()

	doc := submitSweep(t, ts.URL, sweepDoc("drained"))
	s.Drain() // cancels the job and waits for its goroutine

	final := pollSweep(t, ts.URL, doc.ID)
	if final.State != "cancelled" {
		t.Fatalf("state after drain = %q, want cancelled", final.State)
	}
	_, lines := sweepResults(t, ts.URL, doc.ID)
	for i, line := range lines {
		if line.Status != http.StatusServiceUnavailable {
			t.Fatalf("drained line %d status = %d, want 503", i, line.Status)
		}
	}

	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(sweepDoc("late")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining status = %d, want 503", resp.StatusCode)
	}
}
