package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hierclust/internal/faultinject"
	"hierclust/internal/racedetect"
	"hierclust/pkg/hierclust"
)

// chaosScenario is small, synthetic (so the trace cache engages), and
// parameterized by name so two documents can share a trace key while
// missing the result cache.
func chaosScenario(name string) string {
	return fmt.Sprintf(`{
		"name": %q,
		"machine": {"nodes": 16},
		"placement": {"ranks": 64, "procs_per_node": 4},
		"trace": {"source": "synthetic", "iterations": 10},
		"strategies": [{"kind": "hierarchical"}]
	}`, name)
}

func postEvaluate(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/evaluate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

func getMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServeDegradedTraceCacheBitIdentical is the acceptance drill of the
// issue: with every trace-cache disk write failing, hcserve must keep
// serving — results bit-identical to a server with no trace cache at all —
// fall back to memory-only degraded mode (second scenario sharing the
// trace key is a trace-hit from the fallback), and surface the mode on
// /healthz and /metrics.
func TestServeDegradedTraceCacheBitIdentical(t *testing.T) {
	defer faultinject.DisarmAll()
	dir := t.TempDir()
	dc, err := hierclust.NewDiskTraceCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Result caching off: every request must reach the pipeline so the
	// trace-cache path is exercised, not the result LRU.
	s := New(Options{
		Pipeline:   hierclust.NewPipeline(hierclust.WithWorkers(2), hierclust.WithTraceCache(dc)),
		CacheSize:  -1,
		TraceCache: dc,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	refTS := httptest.NewServer(New(Options{CacheSize: -1})) // no trace cache → no disk writes
	defer refTS.Close()

	faultinject.Arm("tracecache.disk.write", faultinject.Fault{Kind: faultinject.KindError})

	resp, body := postEvaluate(t, ts.URL, chaosScenario("chaos-a"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status under write faults = %d, want 200 (body %s)", resp.StatusCode, body)
	}
	_, refBody := postEvaluate(t, refTS.URL, chaosScenario("chaos-a"))
	if !bytes.Equal(body, refBody) {
		t.Fatalf("degraded-mode result differs from trace-cache-free server:\n%s\nvs\n%s", body, refBody)
	}

	// Same trace key, different document: the trace survives in the memory
	// fallback, so this is a trace-hit — no second application run.
	resp2, _ := postEvaluate(t, ts.URL, chaosScenario("chaos-b"))
	if got := resp2.Header.Get("X-Hierclust-Cache"); got != "trace-hit" {
		t.Fatalf("second scenario cache header = %q, want trace-hit from the memory fallback", got)
	}

	var health struct {
		Status     string `json:"status"`
		TraceCache *struct {
			Degraded    bool  `json:"degraded"`
			MemEntries  int   `json:"mem_entries"`
			WriteErrors int64 `json:"write_errors"`
		} `json:"trace_cache"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "degraded" {
		t.Fatalf("healthz status = %q, want degraded", health.Status)
	}
	if health.TraceCache == nil || !health.TraceCache.Degraded {
		t.Fatalf("healthz trace_cache = %+v, want degraded=true", health.TraceCache)
	}
	if health.TraceCache.WriteErrors < 3 || health.TraceCache.MemEntries < 1 {
		t.Fatalf("healthz trace_cache = %+v, want >=3 write errors and a fallback entry", health.TraceCache)
	}

	mtext := getMetrics(t, ts.URL)
	if !strings.Contains(mtext, "hcserve_trace_cache_degraded 1") {
		t.Fatal("metrics missing hcserve_trace_cache_degraded 1")
	}
	if !strings.Contains(mtext, "hcserve_trace_cache_write_errors_total") {
		t.Fatal("metrics missing hcserve_trace_cache_write_errors_total")
	}
}

// TestServePipelineWorkerPanicIncident pins the panic contract end to end:
// an injected pipeline-worker panic answers 500 with an incident id (no
// stack leaks to the client), increments hcserve_panics_total, and the
// very next request succeeds — the server survives its own bugs.
func TestServePipelineWorkerPanicIncident(t *testing.T) {
	defer faultinject.DisarmAll()
	_, ts := newTestServer(t)

	faultinject.Arm("pipeline.worker", faultinject.Fault{Kind: faultinject.KindPanic})
	resp, body := postEvaluate(t, ts.URL, chaosScenario("panic-a"))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status under injected worker panic = %d, want 500 (body %s)", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "incident") {
		t.Fatalf("500 body %q does not carry an incident id", body)
	}
	if strings.Contains(e.Error, "goroutine") {
		t.Fatalf("500 body leaks a stack trace: %q", e.Error)
	}
	if m := getMetrics(t, ts.URL); !strings.Contains(m, "hcserve_panics_total 1") {
		t.Fatal("hcserve_panics_total not incremented")
	}

	faultinject.DisarmAll()
	resp2, body2 := postEvaluate(t, ts.URL, chaosScenario("panic-a"))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("request after recovered panic = %d, want 200 (body %s)", resp2.StatusCode, body2)
	}
}

// TestServeHandlerPanicIsolated drives the outermost isolation boundary:
// a panic raised inside the handler itself (before the pipeline) is
// recovered by instrument, answered 500 + incident, and counted.
func TestServeHandlerPanicIsolated(t *testing.T) {
	defer faultinject.DisarmAll()
	_, ts := newTestServer(t)

	faultinject.Arm("serve.evaluate", faultinject.Fault{Kind: faultinject.KindPanic})
	resp, body := postEvaluate(t, ts.URL, chaosScenario("handler-panic"))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status under handler panic = %d, want 500 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "incident") {
		t.Fatalf("500 body %q does not carry an incident id", body)
	}

	faultinject.DisarmAll()
	if resp2, _ := postEvaluate(t, ts.URL, chaosScenario("handler-panic")); resp2.StatusCode != http.StatusOK {
		t.Fatalf("request after handler panic = %d, want 200", resp2.StatusCode)
	}
}

// TestServeEvalTimeout504 pins the server-side deadline: an evaluation
// held past Options.EvalTimeout (via injected worker latency) is cancelled
// and answered 504 with the deadline in the message, counted on
// hcserve_eval_timeouts_total — and on the batch endpoint the same
// deadline applies per element, as an element-level 504 line.
func TestServeEvalTimeout504(t *testing.T) {
	defer faultinject.DisarmAll()
	// The deadline must comfortably fit a clean evaluation of the test
	// scenario (so the post-disarm request succeeds) while the injected
	// latency comfortably exceeds it; the race detector slows evaluations
	// by an order of magnitude, so both scale with it.
	timeout := 150 * time.Millisecond
	if racedetect.Enabled {
		timeout = time.Second
	}
	s := New(Options{CacheSize: -1, EvalTimeout: timeout})
	ts := httptest.NewServer(s)
	defer ts.Close()

	faultinject.Arm("pipeline.worker", faultinject.Fault{Kind: faultinject.KindLatency, Delay: 4 * timeout})

	resp, body := postEvaluate(t, ts.URL, chaosScenario("slow"))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Fatalf("504 body %q does not mention the deadline", body)
	}
	if m := getMetrics(t, ts.URL); !strings.Contains(m, "hcserve_eval_timeouts_total 1") {
		t.Fatal("hcserve_eval_timeouts_total not incremented")
	}

	// Batch: one malformed element (400 line) and one slow element (504
	// line); the batch request itself still answers 200 and streams both.
	batch := fmt.Sprintf(`[{"nope": true}, %s]`, chaosScenario("slow-batch"))
	bresp, err := http.Post(ts.URL+"/v1/evaluate-batch", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, want 200", bresp.StatusCode)
	}
	dec := json.NewDecoder(bresp.Body)
	var lines []BatchLine
	for {
		var ln BatchLine
		if err := dec.Decode(&ln); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, ln)
	}
	if len(lines) != 2 {
		t.Fatalf("batch returned %d lines, want 2", len(lines))
	}
	if lines[0].Status != http.StatusBadRequest {
		t.Fatalf("malformed element status = %d, want 400", lines[0].Status)
	}
	if lines[1].Status != http.StatusGatewayTimeout || !strings.Contains(lines[1].Error, "deadline") {
		t.Fatalf("slow element line = %+v, want a 504 deadline error", lines[1])
	}

	// With the fault cleared the same scenario fits the deadline.
	faultinject.DisarmAll()
	if resp2, body2 := postEvaluate(t, ts.URL, chaosScenario("slow")); resp2.StatusCode != http.StatusOK {
		t.Fatalf("status after fault cleared = %d, want 200 (body %s)", resp2.StatusCode, body2)
	}
}

// TestServeDrainCompletesUnderFaults: draining while a fault point is
// armed must still answer health (reporting "draining") and reject new
// work with 503 — chaos must not wedge shutdown.
func TestServeDrainCompletesUnderFaults(t *testing.T) {
	defer faultinject.DisarmAll()
	s, ts := newTestServer(t)

	faultinject.Arm("pipeline.worker", faultinject.Fault{Kind: faultinject.KindPanic})
	s.Drain()

	var health struct {
		Status string `json:"status"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "draining" {
		t.Fatalf("healthz status = %q, want draining", health.Status)
	}
	resp, _ := postEvaluate(t, ts.URL, chaosScenario("drain"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 under drain missing Retry-After")
	}
}
