package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// acquireAsync starts an acquire in a goroutine and returns a channel
// delivering its outcome.
func acquireAsync(lim *limiter, ctx context.Context, client string, background bool) chan func() {
	out := make(chan func(), 1)
	go func() {
		adm, release := lim.acquire(ctx, client, background)
		if adm != admitted {
			out <- nil
			return
		}
		out <- release
	}()
	return out
}

// waitCond polls until cond holds or the deadline passes.
func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s never happened", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFairnessClientSlotCap: one client can hold at most clientCap slots
// — its surplus request queues even while slots sit free, and another
// client walks straight into the reserved headroom.
func TestFairnessClientSlotCap(t *testing.T) {
	lim := newLimiter(4, 8, 0) // clientCap defaults to 3
	var releases []func()
	for i := 0; i < 3; i++ {
		adm, release := lim.acquire(context.Background(), "hog", false)
		if adm != admitted {
			t.Fatalf("hog acquire %d not admitted", i)
		}
		releases = append(releases, release)
	}

	// The hog's 4th request queues despite a free slot.
	hog4 := acquireAsync(lim, context.Background(), "hog", false)
	waitCond(t, "hog's over-cap request queueing", func() bool { return lim.queued() == 1 })
	if lim.running() != 3 {
		t.Fatalf("running = %d, want 3 (cap held)", lim.running())
	}

	// A different client is admitted immediately into the headroom.
	adm, otherRelease := lim.acquire(context.Background(), "other", false)
	if adm != admitted {
		t.Fatalf("other client admission = %v, want admitted (headroom reserved by the cap)", adm)
	}

	// Freeing the other client's slot does NOT admit the hog — it is
	// still at its cap; freeing one of the hog's own slots does.
	otherRelease()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-hog4:
		t.Fatal("hog admitted past its cap by another client's release")
	default:
	}
	releases[0]()
	select {
	case release := <-hog4:
		if release == nil {
			t.Fatal("hog's queued request failed")
		}
		release()
	case <-time.After(5 * time.Second):
		t.Fatal("hog's queued request never admitted after its own release")
	}
	releases[1]()
	releases[2]()
}

// TestFairnessBackgroundYieldsToInteractive: a background (sweep-cell)
// waiter that arrived first still yields the freed slot to a later
// interactive waiter.
func TestFairnessBackgroundYieldsToInteractive(t *testing.T) {
	lim := newLimiter(1, 4, 1)
	adm, release := lim.acquire(context.Background(), "holder", false)
	if adm != admitted {
		t.Fatal("holder not admitted")
	}

	bg := acquireAsync(lim, context.Background(), "sweeper", true)
	waitCond(t, "background waiter queueing", func() bool { return lim.queuedBackground() == 1 })
	inter := acquireAsync(lim, context.Background(), "human", false)
	waitCond(t, "interactive waiter queueing", func() bool { return lim.queued() == 1 })

	release()
	var interRelease func()
	select {
	case interRelease = <-inter:
		if interRelease == nil {
			t.Fatal("interactive waiter failed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("interactive waiter not granted first")
	}
	if lim.queuedBackground() != 1 {
		t.Fatal("background waiter granted ahead of interactive")
	}
	interRelease()
	select {
	case bgRelease := <-bg:
		if bgRelease == nil {
			t.Fatal("background waiter failed")
		}
		bgRelease()
	case <-time.After(5 * time.Second):
		t.Fatal("background waiter never granted")
	}
}

// TestFairnessBackgroundExemptFromShed: background acquires queue past
// the interactive queue bound instead of shedding (a sweep's concurrency
// is bounded upstream; shedding its cells would only force retries).
func TestFairnessBackgroundExemptFromShed(t *testing.T) {
	lim := newLimiter(1, 0, 1) // no interactive queue at all
	_, release := lim.acquire(context.Background(), "holder", false)

	if adm, _ := lim.acquire(context.Background(), "human", false); adm != admissionShed {
		t.Fatalf("interactive admission = %v, want shed (queue depth 0)", adm)
	}
	bg := acquireAsync(lim, context.Background(), "sweeper", true)
	waitCond(t, "background waiter queueing", func() bool { return lim.queuedBackground() == 1 })

	release()
	select {
	case bgRelease := <-bg:
		if bgRelease == nil {
			t.Fatal("background waiter failed")
		}
		bgRelease()
	case <-time.After(5 * time.Second):
		t.Fatal("background waiter never granted")
	}
}

// TestFairnessHTTPHeaderKeysClient: end to end, a client saturating its
// per-client cap via X-Hierclust-Client sheds (503/429 paths aside, the
// cap path) while a differently-named client still evaluates.
func TestFairnessHTTPHeaderKeysClient(t *testing.T) {
	s := New(Options{CacheSize: -1, MaxConcurrent: 2, QueueDepth: -1, ClientSlotCap: 1})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	// Hold client A's full share (cap 1 of 2 slots) directly.
	adm, release := s.lim.acquire(context.Background(), "client-a", false)
	if adm != admitted {
		t.Fatal("could not hold client-a's slot")
	}
	defer release()

	post := func(client string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/evaluate",
			strings.NewReader(batchScenario("fair-"+client, "naive", 8)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Hierclust-Client", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// client-a is at its cap: with no queue, its request sheds. client-b
	// uses the second slot and succeeds.
	if got := post("client-a"); got != http.StatusTooManyRequests {
		t.Fatalf("capped client status = %d, want 429", got)
	}
	if got := post("client-b"); got != http.StatusOK {
		t.Fatalf("other client status = %d, want 200", got)
	}
}
