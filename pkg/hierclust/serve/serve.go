// Package serve exposes the hierclust scenario pipeline as an HTTP
// service — the evaluation backend behind cmd/hcserve.
//
// Endpoints:
//
//	POST /v1/evaluate        scenario JSON in → evaluation JSON out
//	POST /v1/evaluate-batch  JSON array of scenarios in → NDJSON results
//	                         out, streamed in input order as each completes
//	GET  /v1/scenarios       list the built-in scenarios (full documents)
//	GET  /metrics            Prometheus text exposition of the registry
//	GET  /healthz            liveness probe
//
// # Caching
//
// Two cache levels sit in front of the pipeline. Successful evaluations
// are cached in a result LRU keyed by the scenario's canonical encoding,
// so hot scenarios (dashboards, CI gates re-POSTing the same document)
// cost one pipeline run. Beneath it, when the pipeline is built with
// hierclust.WithTraceCache, communication traces are cached by
// Scenario.TraceKey, so scenarios that differ only in strategies, mix, or
// baseline share one traced-application run. The X-Hierclust-Cache
// response header reports which level served the request: "hit" (result
// LRU, no pipeline run), "trace-hit" (pipeline ran, trace from cache —
// no application run), or "miss" (full build).
//
// # Admission control
//
// Requests that miss the result cache compete for a bounded pool of
// evaluation slots with a bounded wait queue. When the queue is full the
// request is shed immediately with 429 and a Retry-After header instead
// of queueing unboundedly; a draining server (Drain was called, shutdown
// in progress) answers 503. Cache hits bypass admission entirely.
//
// # Robustness
//
// Evaluations run under an optional server-side deadline
// (Options.EvalTimeout): a scenario that exceeds it is cancelled through
// the pipeline and answered 504 — in a batch, per element. Panics
// anywhere in request handling are recovered at isolation boundaries
// (handler, pipeline worker, batch element), answered 500 with a random
// incident id whose stack trace is logged server-side, and counted on
// hcserve_panics_total; the server keeps serving. When Options.TraceCache
// is wired, disk-cache health (IO error counters, quarantined corrupt
// files, memory-only degraded mode) is surfaced on /metrics and /healthz.
//
// # Metrics
//
// Every interesting internal — request totals by endpoint and status,
// result- and trace-cache hits/misses, per-trace-source latency
// histograms, in-flight and queued evaluation counts, shed totals,
// recovered panics, deadline 504s, trace-cache disk health — is
// registered in an internal/metrics Registry and exposed on GET /metrics.
package serve

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hierclust/internal/faultinject"
	"hierclust/internal/metrics"
	"hierclust/pkg/hierclust"
)

// Options configures the handler.
type Options struct {
	// Pipeline runs the scenarios; nil builds a default pipeline. Wire
	// hierclust.WithTraceCache here to enable the trace-level cache.
	Pipeline *hierclust.Pipeline
	// CacheSize bounds the scenario-result LRU (entries); 0 picks
	// DefaultCacheSize and negative disables caching.
	CacheSize int
	// MaxBodyBytes bounds accepted /v1/evaluate bodies; 0 picks 1 MiB.
	MaxBodyBytes int64
	// MaxBatchBodyBytes bounds accepted /v1/evaluate-batch bodies;
	// 0 picks 16 MiB.
	MaxBatchBodyBytes int64
	// MaxBatchScenarios bounds the element count of one batch; 0 picks
	// DefaultMaxBatch.
	MaxBatchScenarios int
	// MaxConcurrent bounds simultaneously executing evaluations; 0 picks
	// DefaultMaxConcurrent.
	MaxConcurrent int
	// QueueDepth bounds evaluations waiting for a slot before load
	// shedding begins; 0 picks 2×MaxConcurrent, negative disables
	// queueing (every contended request sheds).
	QueueDepth int
	// ClientSlotCap bounds how many evaluation slots one client (keyed by
	// the X-Hierclust-Client header, falling back to the remote address)
	// can hold at once, so a sweep job or an aggressive batch client
	// cannot starve interactive traffic; 0 picks MaxConcurrent-1 (floored
	// at 1).
	ClientSlotCap int
	// MaxSweepCells bounds the planned cell count of one POST /v1/sweeps
	// job; 0 picks DefaultMaxSweepCells.
	MaxSweepCells int
	// MaxConcurrentSweeps bounds simultaneously executing sweep jobs
	// (each job's cells then compete for evaluation slots one by one);
	// 0 picks DefaultMaxConcurrentSweeps.
	MaxConcurrentSweeps int
	// MaxSweepJobs bounds retained sweep jobs, finished ones included
	// (status and results stay queryable until evicted); 0 picks
	// DefaultMaxSweepJobs. When the store is full and every job is still
	// running, new submissions are rejected with 429.
	MaxSweepJobs int
	// RetryAfter is the advisory backoff returned with 429/503
	// responses; 0 picks 1s. Sub-second values round up to 1s (the
	// Retry-After header carries whole seconds).
	RetryAfter time.Duration
	// Metrics receives the server's instrumentation; nil builds a fresh
	// registry (exposed either way on GET /metrics).
	Metrics *metrics.Registry
	// EvalTimeout bounds one evaluation's pipeline run (per batch element
	// on /v1/evaluate-batch), measured after admission — queue wait does
	// not count against it. An evaluation that exceeds the deadline is
	// cancelled and answered 504. 0 disables the deadline.
	EvalTimeout time.Duration
	// TraceCache, when non-nil, is polled for disk-cache health: its error
	// counters, quarantine count, and degraded flag are exposed on
	// /metrics and /healthz. Wire the same cache here and into the
	// pipeline (hierclust.WithTraceCache).
	TraceCache TraceCacheStatser
	// ResultCache, when non-nil, is mounted as a durable write-through
	// tier beneath the result LRU: every rendered result document is
	// stored in both, and an LRU miss consults the tier (promoting hits
	// back into the LRU) before the pipeline runs. Results are
	// deterministic by canonical scenario key, so a disk-served document
	// is bit-identical to a recomputed one — this is what lets the server
	// come back warm after a restart and lets journaled sweeps resume
	// recomputing only missing cells. Its health (error counters,
	// quarantines, degraded mode) is exposed on /metrics and /healthz.
	ResultCache ResultCacheTier
}

// TraceCacheStatser is the observability surface Options.TraceCache needs;
// both built-in trace caches implement it.
type TraceCacheStatser interface {
	Stats() hierclust.TraceCacheStats
}

// ResultCacheTier is the durable result-cache surface Options.ResultCache
// needs: the sweep executor's Get/Put contract plus stats for /metrics and
// /healthz. hierclust.DiskResultCache implements it.
type ResultCacheTier interface {
	hierclust.SweepResultCache
	Stats() hierclust.ResultCacheStats
}

// DefaultCacheSize is the scenario-result LRU capacity when Options leaves
// CacheSize zero.
const DefaultCacheSize = 128

// DefaultMaxConcurrent is the evaluation-slot count when Options leaves
// MaxConcurrent zero.
const DefaultMaxConcurrent = 4

// DefaultMaxBatch is the per-request scenario bound of /v1/evaluate-batch
// when Options leaves MaxBatchScenarios zero.
const DefaultMaxBatch = 256

// DefaultMaxSweepCells is the per-job planned-cell bound of POST /v1/sweeps
// when Options leaves MaxSweepCells zero.
const DefaultMaxSweepCells = 1024

// DefaultMaxConcurrentSweeps is the simultaneous sweep-job bound when
// Options leaves MaxConcurrentSweeps zero.
const DefaultMaxConcurrentSweeps = 2

// DefaultMaxSweepJobs is the job-store bound when Options leaves
// MaxSweepJobs zero.
const DefaultMaxSweepJobs = 64

// Server is the HTTP evaluation service. It is an http.Handler; mount it
// directly or under a prefix.
type Server struct {
	mux          *http.ServeMux
	pipeline     *hierclust.Pipeline
	cache        *lruCache
	lim          *limiter
	maxBody      int64
	maxBatchBody int64
	maxBatch     int
	retryAfter   string // whole seconds, pre-rendered for the header
	evalTimeout  time.Duration
	traceCache   TraceCacheStatser
	resultTier   ResultCacheTier
	journal      *sweepJournal
	draining     atomic.Bool

	maxSweepCells int
	maxSweeps     int
	maxSweepJobs  int
	sweepMu       sync.Mutex
	sweepJobs     map[string]*sweepJob
	sweepOrder    []string // insertion order, for bounded-store eviction
	sweepCtx      context.Context
	sweepCancel   context.CancelFunc
	sweepWG       sync.WaitGroup

	hits   atomic.Int64
	misses atomic.Int64

	reg             *metrics.Registry
	reqTotal        *metrics.CounterVec
	cacheHits       *metrics.CounterVec
	cacheMisses     *metrics.CounterVec
	evalSeconds     *metrics.HistogramVec
	shedTotal       *metrics.Counter
	batchTotal      *metrics.Counter
	panicsTotal     *metrics.Counter
	timeoutsTotal   *metrics.Counter
	sweepJobsTotal  *metrics.Counter
	sweepCellsTotal *metrics.Counter
	sweepCellsDone  *metrics.Counter
	sweepCellHits   *metrics.Counter
	sweepCellsFail  *metrics.Counter
	sweepBuilds     *metrics.Counter
	sweepRefs       *metrics.Counter
}

// New builds the service.
func New(opts Options) *Server {
	pl := opts.Pipeline
	if pl == nil {
		pl = hierclust.NewPipeline()
	}
	size := opts.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	maxBody := opts.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 1 << 20
	}
	maxBatchBody := opts.MaxBatchBodyBytes
	if maxBatchBody <= 0 {
		maxBatchBody = 16 << 20
	}
	maxBatch := opts.MaxBatchScenarios
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	maxConc := opts.MaxConcurrent
	if maxConc <= 0 {
		maxConc = DefaultMaxConcurrent
	}
	queue := opts.QueueDepth
	switch {
	case queue == 0:
		queue = 2 * maxConc
	case queue < 0:
		queue = 0
	}
	maxSweepCells := opts.MaxSweepCells
	if maxSweepCells <= 0 {
		maxSweepCells = DefaultMaxSweepCells
	}
	maxSweeps := opts.MaxConcurrentSweeps
	if maxSweeps <= 0 {
		maxSweeps = DefaultMaxConcurrentSweeps
	}
	maxSweepJobs := opts.MaxSweepJobs
	if maxSweepJobs <= 0 {
		maxSweepJobs = DefaultMaxSweepJobs
	}
	retry := opts.RetryAfter
	if retry <= 0 {
		retry = time.Second
	}
	retrySec := int(retry.Round(time.Second) / time.Second)
	if retrySec < 1 {
		retrySec = 1
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}

	sweepCtx, sweepCancel := context.WithCancel(context.Background())
	s := &Server{
		mux:           http.NewServeMux(),
		pipeline:      pl,
		cache:         newLRU(size),
		lim:           newLimiter(maxConc, queue, opts.ClientSlotCap),
		maxBody:       maxBody,
		maxBatchBody:  maxBatchBody,
		maxBatch:      maxBatch,
		maxSweepCells: maxSweepCells,
		maxSweeps:     maxSweeps,
		maxSweepJobs:  maxSweepJobs,
		sweepJobs:     map[string]*sweepJob{},
		sweepCtx:      sweepCtx,
		sweepCancel:   sweepCancel,
		retryAfter:    strconv.Itoa(retrySec),
		evalTimeout:   opts.EvalTimeout,
		traceCache:    opts.TraceCache,
		resultTier:    opts.ResultCache,
		reg:           reg,
	}
	s.reqTotal = reg.CounterVec("hcserve_requests_total",
		"HTTP requests served, by endpoint and status code.", "endpoint", "status")
	s.cacheHits = reg.CounterVec("hcserve_cache_hits_total",
		"Cache hits by level: result (LRU, no pipeline run) or trace (no application run).", "cache")
	s.cacheMisses = reg.CounterVec("hcserve_cache_misses_total",
		"Cache misses by level: result or trace.", "cache")
	s.evalSeconds = reg.HistogramVec("hcserve_evaluate_seconds",
		"Pipeline evaluation latency by trace source (cache hits excluded).", nil, "source")
	s.shedTotal = reg.Counter("hcserve_shed_total",
		"Evaluations rejected with 429 because the wait queue was full.")
	s.batchTotal = reg.Counter("hcserve_batch_scenarios_total",
		"Scenario elements received by /v1/evaluate-batch.")
	reg.GaugeFunc("hcserve_inflight_evaluations",
		"Evaluations currently holding an execution slot.",
		func() float64 { return float64(s.lim.running()) })
	reg.GaugeFunc("hcserve_queued_evaluations",
		"Interactive evaluations waiting for an execution slot.",
		func() float64 { return float64(s.lim.queued()) })
	reg.GaugeFunc("hcserve_queued_background",
		"Background (sweep-cell) evaluations waiting for an execution slot.",
		func() float64 { return float64(s.lim.queuedBackground()) })
	reg.GaugeFunc("hcserve_evaluation_slots",
		"Configured evaluation-slot capacity (MaxConcurrent).",
		func() float64 { return float64(s.lim.capacity()) })
	reg.GaugeFunc("hcserve_result_cache_entries",
		"Entries resident in the scenario-result LRU.",
		func() float64 { return float64(s.cache.Len()) })
	reg.CounterFunc("hcserve_result_cache_hits_total",
		"Result-cache hits across every path (evaluate, batch, sweep cells; LRU and disk tier).",
		func() float64 { return float64(s.hits.Load()) })
	reg.CounterFunc("hcserve_result_cache_misses_total",
		"Result-cache misses across every path (evaluate, batch, sweep cells).",
		func() float64 { return float64(s.misses.Load()) })
	reg.CounterFunc("hcserve_result_cache_evictions_total",
		"Entries evicted from the scenario-result LRU by capacity pressure.",
		func() float64 { return float64(s.cache.Evictions()) })
	if rc := s.resultTier; rc != nil {
		reg.CounterFunc("hcserve_result_cache_disk_read_errors_total",
			"Failed result-cache disk read attempts (each retry counts).",
			func() float64 { return float64(rc.Stats().ReadErrors) })
		reg.CounterFunc("hcserve_result_cache_disk_write_errors_total",
			"Failed result-cache disk write attempts (each retry counts).",
			func() float64 { return float64(rc.Stats().WriteErrors) })
		reg.CounterFunc("hcserve_result_cache_quarantined_total",
			"Corrupt result-cache files quarantined to .bad for post-mortem.",
			func() float64 { return float64(rc.Stats().Quarantined) })
		reg.GaugeFunc("hcserve_result_cache_degraded",
			"1 while the disk result cache serves memory-only after repeated disk failures.",
			func() float64 {
				if rc.Stats().Degraded {
					return 1
				}
				return 0
			})
		reg.GaugeFunc("hcserve_result_cache_disk_entries",
			"Result documents resident in the disk result-cache tier.",
			func() float64 { return float64(rc.Stats().Entries) })
		reg.GaugeFunc("hcserve_result_cache_disk_bytes",
			"Bytes stored by the disk result-cache tier.",
			func() float64 { return float64(rc.Stats().Bytes) })
	}
	s.panicsTotal = reg.Counter("hcserve_panics_total",
		"Panics recovered at an isolation boundary (request handler, pipeline worker, batch element).")
	s.sweepJobsTotal = reg.Counter("hcserve_sweep_jobs_total",
		"Sweep jobs accepted by POST /v1/sweeps.")
	s.sweepCellsTotal = reg.Counter("hcserve_sweep_cells_total",
		"Cells planned across accepted sweep jobs.")
	s.sweepCellsDone = reg.Counter("hcserve_sweep_cells_completed_total",
		"Sweep cells evaluated to completion (cache hits excluded).")
	s.sweepCellHits = reg.Counter("hcserve_sweep_cell_cache_hits_total",
		"Sweep cells served from the result cache without evaluation.")
	s.sweepCellsFail = reg.Counter("hcserve_sweep_cells_failed_total",
		"Sweep cells that failed (including cancellation).")
	s.sweepBuilds = reg.Counter("hcserve_sweep_node_builds_total",
		"Distinct shared-node builds (traces + partitions) planned across accepted sweeps; builds/refs is the dedup ratio's complement.")
	s.sweepRefs = reg.Counter("hcserve_sweep_node_refs_total",
		"Per-cell shared-node references (traces + partitions) planned across accepted sweeps.")
	reg.GaugeFunc("hcserve_sweeps_running",
		"Sweep jobs currently executing.",
		func() float64 { return float64(s.runningSweeps()) })
	s.timeoutsTotal = reg.Counter("hcserve_eval_timeouts_total",
		"Evaluations cut off by the server-side deadline and answered 504.")
	if tc := s.traceCache; tc != nil {
		reg.CounterFunc("hcserve_trace_cache_read_errors_total",
			"Failed trace-cache disk read attempts (each retry counts).",
			func() float64 { return float64(tc.Stats().ReadErrors) })
		reg.CounterFunc("hcserve_trace_cache_write_errors_total",
			"Failed trace-cache disk write attempts (each retry counts).",
			func() float64 { return float64(tc.Stats().WriteErrors) })
		reg.CounterFunc("hcserve_trace_cache_quarantined_total",
			"Corrupt trace-cache files quarantined to .bad for post-mortem.",
			func() float64 { return float64(tc.Stats().Quarantined) })
		reg.GaugeFunc("hcserve_trace_cache_degraded",
			"1 while the trace cache serves memory-only after repeated disk failures.",
			func() float64 {
				if tc.Stats().Degraded {
					return 1
				}
				return 0
			})
		reg.GaugeFunc("hcserve_trace_cache_entries",
			"Entries resident in the trace cache.",
			func() float64 { return float64(tc.Stats().Entries) })
	}

	s.mux.HandleFunc("POST /v1/evaluate", s.instrument("evaluate", s.handleEvaluate))
	s.mux.HandleFunc("POST /v1/evaluate-batch", s.instrument("evaluate-batch", s.handleEvaluateBatch))
	s.mux.HandleFunc("POST /v1/sweeps", s.instrument("sweeps", s.handleSweepSubmit))
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.instrument("sweep-status", s.handleSweepStatus))
	s.mux.HandleFunc("GET /v1/sweeps/{id}/results", s.instrument("sweep-results", s.handleSweepResults))
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.instrument("sweep-delete", s.handleSweepDelete))
	s.mux.HandleFunc("GET /v1/scenarios", s.instrument("scenarios", s.handleScenarios))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Registry returns the metrics registry (the one passed in Options, or the
// server's own), for callers embedding hcserve metrics alongside their own.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Drain puts the server into shutdown mode: queued evaluations are
// released with 503, new expensive work is rejected with 503 + Retry-After,
// running sweep jobs are cancelled (their completed cells are already in
// the result cache, so a resubmit elsewhere resumes), and cheap reads
// (cache hits, scenario listings, metrics, health, sweep status) keep
// answering so load balancers and scrapers see the drain happen. Call it
// before http.Server.Shutdown, which then waits for the already-running
// evaluations to finish; Drain itself waits for sweep-job goroutines to
// stop.
func (s *Server) Drain() {
	// Flip the flag under sweepMu: storeSweepJob re-checks draining and
	// registers with sweepWG inside the same critical section, so once
	// this unlocks no new sweep job can be added and sweepWG.Wait below
	// observes every job goroutine.
	s.sweepMu.Lock()
	s.draining.Store(true)
	s.sweepMu.Unlock()
	s.lim.drain()
	s.sweepCancel()
	s.sweepWG.Wait()
}

// CacheStats returns the lifetime result-cache hit/miss counters and
// current size.
func (s *Server) CacheStats() (hits, misses int64, size int) {
	return s.hits.Load(), s.misses.Load(), s.cache.Len()
}

// cacheGet consults the result LRU, then the durable tier (when mounted),
// promoting tier hits back into the LRU. Either source is a cache hit —
// results are deterministic by key, so a disk document is bit-identical
// to a resident one.
func (s *Server) cacheGet(key string) ([]byte, bool) {
	if doc, ok := s.cache.Get(key); ok {
		return doc, true
	}
	if s.resultTier == nil {
		return nil, false
	}
	doc, ok := s.resultTier.Get(key)
	if !ok {
		return nil, false
	}
	s.cache.Put(key, doc)
	return doc, true
}

// cachePut stores a rendered result document in the LRU and writes it
// through to the durable tier (when mounted).
func (s *Server) cachePut(key string, doc []byte) {
	s.cache.Put(key, doc)
	if s.resultTier != nil {
		s.resultTier.Put(key, doc)
	}
}

// statusWriter records the response status for the request-total metric.
// It forwards Flush so NDJSON streaming keeps working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the per-endpoint request counter and the
// outermost panic isolation boundary: a handler panic is answered 500 with
// an incident id (when the response has not started) instead of killing
// the connection, and the server keeps serving.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if v := recover(); v != nil {
				id := s.reportPanic(v, debug.Stack())
				if sw.status == 0 {
					s.writeError(sw, http.StatusInternalServerError, incidentErr(id))
				}
			}
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			s.reqTotal.With(endpoint, strconv.Itoa(status)).Inc()
		}()
		h(sw, r)
	}
}

// reportPanic logs a recovered panic with its stack under a short random
// incident id — the correlation token the client gets instead of the stack
// — and counts it on hcserve_panics_total.
func (s *Server) reportPanic(v any, stack []byte) string {
	id := incidentID()
	s.panicsTotal.Inc()
	log.Printf("hcserve: panic incident %s: %v\n%s", id, v, stack)
	return id
}

func incidentID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// incidentErr is the client-facing form of a recovered panic: no internal
// detail, just the token to grep server logs for.
func incidentErr(id string) error {
	return fmt.Errorf("hierclust: internal error; incident %s", id)
}

// errorDoc is the JSON error envelope.
type errorDoc struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorDoc{Error: err.Error()})
}

// statusClientClosed is the non-standard 499 reported when the client went
// away mid-evaluation (nginx's convention).
const statusClientClosed = 499

// clientKey identifies the client for per-client admission accounting:
// the X-Hierclust-Client header when present (the cooperative path —
// fleets and CI runners set it), otherwise the remote host.
func clientKey(r *http.Request) string {
	if c := r.Header.Get("X-Hierclust-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// decodeScenario parses and policy-checks one scenario document, mapping
// failures to an HTTP status.
func decodeScenario(body []byte) (*hierclust.Scenario, int, error) {
	sc, err := hierclust.DecodeScenario(body)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	// Trace files are a local-filesystem feature; accepting paths over
	// HTTP would let any client read arbitrary server files.
	if sc.Trace.Source == "file" {
		return nil, http.StatusBadRequest,
			fmt.Errorf("hierclust: trace source \"file\" is not accepted over HTTP; inline a synthetic or tsunami source")
	}
	return sc, 0, nil
}

// evaluate runs one decoded scenario through result cache → admission →
// pipeline. It returns the compact rendered result document and the cache
// level that answered ("hit", "trace-hit", or "miss"), or a non-zero HTTP
// status with the error.
func (s *Server) evaluate(r *http.Request, sc *hierclust.Scenario) (doc []byte, cacheState string, status int, err error) {
	if err := faultinject.Hit("serve.evaluate"); err != nil {
		return nil, "", http.StatusInternalServerError, err
	}
	key, err := sc.CacheKey()
	if err != nil {
		return nil, "", http.StatusBadRequest, err
	}
	if doc, ok := s.cacheGet(key); ok {
		s.hits.Add(1)
		s.cacheHits.With("result").Inc()
		return doc, "hit", 0, nil
	}
	s.misses.Add(1)
	s.cacheMisses.With("result").Inc()

	adm, release := s.lim.acquire(r.Context(), clientKey(r), false)
	switch adm {
	case admissionShed:
		s.shedTotal.Inc()
		return nil, "", http.StatusTooManyRequests,
			fmt.Errorf("hierclust: evaluation queue full (%d running, %d queued); retry after %ss",
				s.lim.running(), s.lim.queued(), s.retryAfter)
	case admissionDraining:
		return nil, "", http.StatusServiceUnavailable,
			errors.New("hierclust: server draining; retry against another replica")
	case admissionCancelled:
		return nil, "", statusClientClosed, r.Context().Err()
	}
	defer release()

	// The deadline starts here, after admission: time spent queued for a
	// slot is the limiter's business, not the evaluation's.
	runCtx := r.Context()
	cancel := func() {}
	if s.evalTimeout > 0 {
		runCtx, cancel = context.WithTimeout(runCtx, s.evalTimeout)
	}
	defer cancel()

	ctx, info := hierclust.WithTraceInfo(runCtx)
	start := time.Now()
	res, err := s.pipeline.Run(ctx, sc)
	switch info.Cache {
	case "hit":
		s.cacheHits.With("trace").Inc()
	case "miss":
		s.cacheMisses.With("trace").Inc()
	}
	if err != nil {
		// Rank the failure: a recovered pipeline panic is a server bug
		// (500 + incident id); a cancelled client is not a server error
		// (499); a deadline the *server* imposed is a timeout (504);
		// everything else from the pipeline is a scenario problem (the
		// inputs were already validated, so machine-building failures are
		// bad parameters — 422).
		var pe *hierclust.PanicError
		switch {
		case errors.As(err, &pe):
			id := s.reportPanic(pe.Value, pe.Stack)
			return nil, "", http.StatusInternalServerError, incidentErr(id)
		case r.Context().Err() != nil:
			return nil, "", statusClientClosed, r.Context().Err()
		case runCtx.Err() != nil:
			s.timeoutsTotal.Inc()
			return nil, "", http.StatusGatewayTimeout,
				fmt.Errorf("hierclust: evaluation exceeded the server's %s deadline", s.evalTimeout)
		}
		return nil, "", http.StatusUnprocessableEntity, err
	}
	s.evalSeconds.With(sc.Trace.Source).Observe(time.Since(start).Seconds())

	doc, err = json.Marshal(res)
	if err != nil {
		return nil, "", http.StatusInternalServerError, err
	}
	s.cachePut(key, doc)
	cacheState = "miss"
	if info.Cache == "hit" {
		cacheState = "trace-hit"
	}
	return doc, cacheState, 0, nil
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		status := http.StatusBadRequest // e.g. client disconnected mid-upload
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, status, fmt.Errorf("reading body: %w", err))
		return
	}
	sc, status, err := decodeScenario(body)
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	doc, cacheState, status, err := s.evaluate(r, sc)
	if err != nil {
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", s.retryAfter)
		}
		s.writeError(w, status, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Hierclust-Cache", cacheState)
	// Responses stay human-readable (the documented curl workflow); the
	// cache stores the compact form shared with the batch endpoint.
	var pretty []byte
	if pretty, err = prettyJSON(doc); err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	_, _ = w.Write(pretty)
}

// prettyJSON re-indents a compact document for the single-scenario
// endpoint.
func prettyJSON(doc []byte) ([]byte, error) {
	var b bytes.Buffer
	if err := json.Indent(&b, doc, "", "  "); err != nil {
		return nil, err
	}
	b.WriteByte('\n')
	return b.Bytes(), nil
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	doc, err := json.MarshalIndent(hierclust.BuiltinScenarios(), "", "  ")
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(doc, '\n'))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// healthDoc is the GET /healthz body. Status is "ok", "degraded" (the
// trace cache or the disk result cache fell back to memory-only; results
// are still correct and bit-identical, the disk needs attention), or
// "draining" (shutdown in progress; stop routing here).
type healthDoc struct {
	Status       string           `json:"status"`
	CacheEntries int              `json:"cache_entries"`
	CacheHits    int64            `json:"cache_hits"`
	CacheMisses  int64            `json:"cache_misses"`
	TraceCache   *traceHealthDoc  `json:"trace_cache,omitempty"`
	ResultCache  *resultHealthDoc `json:"result_cache,omitempty"`
}

// resultHealthDoc mirrors traceHealthDoc for the durable result-cache
// tier.
type resultHealthDoc struct {
	Degraded    bool  `json:"degraded"`
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	MemEntries  int   `json:"mem_entries"`
	ReadErrors  int64 `json:"read_errors"`
	WriteErrors int64 `json:"write_errors"`
	Quarantined int64 `json:"quarantined"`
}

type traceHealthDoc struct {
	Degraded    bool  `json:"degraded"`
	Entries     int   `json:"entries"`
	MemEntries  int   `json:"mem_entries"`
	ReadErrors  int64 `json:"read_errors"`
	WriteErrors int64 `json:"write_errors"`
	Quarantined int64 `json:"quarantined"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hits, misses, size := s.CacheStats()
	doc := healthDoc{Status: "ok", CacheEntries: size, CacheHits: hits, CacheMisses: misses}
	if tc := s.traceCache; tc != nil {
		st := tc.Stats()
		doc.TraceCache = &traceHealthDoc{
			Degraded:    st.Degraded,
			Entries:     st.Entries,
			MemEntries:  st.MemEntries,
			ReadErrors:  st.ReadErrors,
			WriteErrors: st.WriteErrors,
			Quarantined: st.Quarantined,
		}
		if st.Degraded {
			doc.Status = "degraded"
		}
	}
	if rc := s.resultTier; rc != nil {
		st := rc.Stats()
		doc.ResultCache = &resultHealthDoc{
			Degraded:    st.Degraded,
			Entries:     st.Entries,
			Bytes:       st.Bytes,
			MemEntries:  st.MemEntries,
			ReadErrors:  st.ReadErrors,
			WriteErrors: st.WriteErrors,
			Quarantined: st.Quarantined,
		}
		if st.Degraded {
			doc.Status = "degraded"
		}
	}
	if s.draining.Load() {
		doc.Status = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(doc)
}
