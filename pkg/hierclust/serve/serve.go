// Package serve exposes the hierclust scenario pipeline as an HTTP
// service — the evaluation backend behind cmd/hcserve.
//
// Endpoints:
//
//	POST /v1/evaluate   scenario JSON in → evaluation JSON out
//	GET  /v1/scenarios  list the built-in scenarios (full documents)
//	GET  /healthz       liveness probe
//
// Responses to /v1/evaluate are cached in an LRU keyed by the scenario's
// canonical encoding, so hot scenarios (dashboards, CI gates re-POSTing the
// same document) cost one pipeline run. The X-Hierclust-Cache response
// header reports "hit" or "miss".
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"hierclust/pkg/hierclust"
)

// Options configures the handler.
type Options struct {
	// Pipeline runs the scenarios; nil builds a default pipeline.
	Pipeline *hierclust.Pipeline
	// CacheSize bounds the scenario-result LRU (entries); 0 picks
	// DefaultCacheSize and negative disables caching.
	CacheSize int
	// MaxBodyBytes bounds accepted request bodies; 0 picks 1 MiB.
	MaxBodyBytes int64
}

// DefaultCacheSize is the scenario-result LRU capacity when Options leaves
// CacheSize zero.
const DefaultCacheSize = 128

// Server is the HTTP evaluation service. It is an http.Handler; mount it
// directly or under a prefix.
type Server struct {
	mux      *http.ServeMux
	pipeline *hierclust.Pipeline
	cache    *lruCache
	maxBody  int64

	hits   atomic.Int64
	misses atomic.Int64
}

// New builds the service.
func New(opts Options) *Server {
	pl := opts.Pipeline
	if pl == nil {
		pl = hierclust.NewPipeline()
	}
	size := opts.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	maxBody := opts.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 1 << 20
	}
	s := &Server{
		mux:      http.NewServeMux(),
		pipeline: pl,
		cache:    newLRU(size),
		maxBody:  maxBody,
	}
	s.mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// CacheStats returns the lifetime hit/miss counters and current size.
func (s *Server) CacheStats() (hits, misses int64, size int) {
	return s.hits.Load(), s.misses.Load(), s.cache.Len()
}

// errorDoc is the JSON error envelope.
type errorDoc struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorDoc{Error: err.Error()})
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		status := http.StatusBadRequest // e.g. client disconnected mid-upload
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, status, fmt.Errorf("reading body: %w", err))
		return
	}
	sc, err := hierclust.DecodeScenario(body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	// Trace files are a local-filesystem feature; accepting paths over
	// HTTP would let any client read arbitrary server files.
	if sc.Trace.Source == "file" {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("hierclust: trace source \"file\" is not accepted over HTTP; inline a synthetic or tsunami source"))
		return
	}
	key, err := sc.CacheKey()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if doc, ok := s.cache.Get(key); ok {
		s.hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Hierclust-Cache", "hit")
		_, _ = w.Write(doc)
		return
	}
	s.misses.Add(1)
	res, err := s.pipeline.Run(r.Context(), sc)
	if err != nil {
		// A cancelled client is not a server error; everything else from
		// the pipeline is a scenario problem (the inputs were already
		// validated, so machine-building failures are bad parameters).
		if r.Context().Err() != nil {
			s.writeError(w, 499, r.Context().Err()) // client closed request
			return
		}
		s.writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	doc = append(doc, '\n')
	s.cache.Put(key, doc)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Hierclust-Cache", "miss")
	_, _ = w.Write(doc)
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	doc, err := json.MarshalIndent(hierclust.BuiltinScenarios(), "", "  ")
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(doc, '\n'))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hits, misses, size := s.CacheStats()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"cache_entries\":%d,\"cache_hits\":%d,\"cache_misses\":%d}\n",
		size, hits, misses)
}
