package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hierclust/pkg/hierclust"
)

// scrapeMetrics fetches /metrics and returns the exposition text.
func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricLine asserts one exact sample line is present in the scrape.
func metricLine(t *testing.T, text, want string) {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if line == want {
			return
		}
	}
	t.Fatalf("metrics scrape missing line %q in:\n%s", want, text)
}

// TestShedWith429 saturates the limiter (one slot, no queue) and asserts
// load shedding: 429, a Retry-After header, an error body, and the shed
// counter visible in /metrics — then recovery once the slot frees.
func TestShedWith429(t *testing.T) {
	s := New(Options{CacheSize: 4, MaxConcurrent: 1, QueueDepth: -1, RetryAfter: 2 * time.Second})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	adm, release := s.lim.acquire(context.Background(), "test-client", false)
	if adm != admitted {
		t.Fatal("could not occupy the evaluation slot")
	}

	body := batchScenario("shed-me", "hierarchical", 0)
	resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", got)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("shed error body: %v (%v)", e, err)
	}

	text := scrapeMetrics(t, ts.URL)
	metricLine(t, text, "hcserve_shed_total 1")
	metricLine(t, text, `hcserve_requests_total{endpoint="evaluate",status="429"} 1`)
	metricLine(t, text, "hcserve_inflight_evaluations 1")

	release()
	resp2, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-release status = %d, want 200", resp2.StatusCode)
	}
}

// TestQueueAdmitsUpToDepth pins the queue bound: with one slot held and
// depth 1, the first waiter queues (and eventually runs) while the second
// concurrent contender is shed.
func TestQueueAdmitsUpToDepth(t *testing.T) {
	lim := newLimiter(1, 1, 0)
	adm, release := lim.acquire(context.Background(), "other-client", false)
	if adm != admitted {
		t.Fatal("slot not acquired")
	}

	type outcome struct {
		adm     admission
		release func()
	}
	results := make(chan outcome, 2)
	go func() {
		a, rel := lim.acquire(context.Background(), "other-client", false)
		results <- outcome{a, rel}
	}()
	// Wait until the first contender is actually queued before racing the
	// second one against it.
	deadline := time.Now().Add(5 * time.Second)
	for lim.queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first contender never queued")
		}
		time.Sleep(time.Millisecond)
	}
	admShed, rel := lim.acquire(context.Background(), "other-client", false)
	if admShed != admissionShed || rel != nil {
		t.Fatalf("second contender admission = %v, want shed", admShed)
	}

	release()
	got := <-results
	if got.adm != admitted {
		t.Fatalf("queued contender admission = %v, want admitted", got.adm)
	}
	got.release()
}

// TestQueuedWaiterCancellation: a queued request whose client goes away is
// released with admissionCancelled, not left in the queue.
func TestQueuedWaiterCancellation(t *testing.T) {
	lim := newLimiter(1, 4, 0)
	_, release := lim.acquire(context.Background(), "other-client", false)
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan admission, 1)
	go func() {
		a, _ := lim.acquire(ctx, "c", false)
		done <- a
	}()
	deadline := time.Now().Add(5 * time.Second)
	for lim.queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case a := <-done:
		if a != admissionCancelled {
			t.Fatalf("admission = %v, want cancelled", a)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never released")
	}
	if q := lim.queued(); q != 0 {
		t.Fatalf("queued = %d after cancellation, want 0", q)
	}
}

// TestDrainRejectsNewWork: after Drain, uncached evaluations answer 503
// with Retry-After, queued waiters are released, healthz reports draining —
// and cheap reads (cache hits, metrics) keep working.
func TestDrainRejectsNewWork(t *testing.T) {
	s, ts := newTestServer(t)

	// Warm the result cache before draining.
	cached := batchScenario("pre-drain", "naive", 8)
	resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(cached))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	s.Drain()

	fresh := batchScenario("post-drain", "hierarchical", 0)
	resp2, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(fresh))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// Cache hits bypass admission and still answer.
	resp3, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(cached))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK || resp3.Header.Get("X-Hierclust-Cache") != "hit" {
		t.Fatalf("cached scenario while draining: status %d cache %q, want 200 hit",
			resp3.StatusCode, resp3.Header.Get("X-Hierclust-Cache"))
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil || h.Status != "draining" {
		t.Fatalf("healthz while draining: %+v (%v)", h, err)
	}
}

// tsunamiScenario renders a scenario that traces the tsunami proxy app.
func tsunamiScenario(name, kind string) string {
	return fmt.Sprintf(`{
		"name": %q,
		"machine": {"nodes": 16},
		"placement": {"ranks": 64, "procs_per_node": 4},
		"trace": {"source": "tsunami", "iterations": 5},
		"strategies": [{"kind": %q}]
	}`, name, kind)
}

// TestTraceCacheHitObservableInMetrics is the acceptance-criteria test:
// two scenarios that share one tsunami trace but differ in strategy must
// run the traced application exactly once — the second evaluation answers
// "trace-hit" and the trace-cache hit shows up in /metrics.
func TestTraceCacheHitObservableInMetrics(t *testing.T) {
	tc := hierclust.NewMemoryTraceCache(4)
	s := New(Options{
		CacheSize: 8,
		Pipeline:  hierclust.NewPipeline(hierclust.WithTraceCache(tc)),
	})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	post := func(body string) (string, *hierclust.Result) {
		resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("status = %d: %s", resp.StatusCode, b)
		}
		var res hierclust.Result
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("X-Hierclust-Cache"), &res
	}

	state1, _ := post(tsunamiScenario("trace-a", "hierarchical"))
	if state1 != "miss" {
		t.Fatalf("first scenario cache state = %q, want miss (full build)", state1)
	}
	state2, _ := post(tsunamiScenario("trace-b", "size-guided"))
	if state2 != "trace-hit" {
		t.Fatalf("second scenario cache state = %q, want trace-hit", state2)
	}

	// The application really ran once: one resident trace, one hit.
	stats := tc.Stats()
	if stats.Hits != 1 || stats.Misses != 1 || stats.Entries != 1 {
		t.Fatalf("trace cache stats = %+v, want 1 hit / 1 miss / 1 entry", stats)
	}

	text := scrapeMetrics(t, ts.URL)
	metricLine(t, text, `hcserve_cache_hits_total{cache="trace"} 1`)
	metricLine(t, text, `hcserve_cache_misses_total{cache="trace"} 1`)
	metricLine(t, text, `hcserve_cache_misses_total{cache="result"} 2`)
	if !strings.Contains(text, `hcserve_evaluate_seconds_count{source="tsunami"} 2`) {
		t.Fatalf("latency histogram missing tsunami count in:\n%s", text)
	}
}
