package hierclust

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"hierclust/internal/faultinject"
)

// mapResultCache is a trivially correct SweepResultCache for tests.
type mapResultCache struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMapResultCache() *mapResultCache {
	return &mapResultCache{m: map[string][]byte{}}
}

func (c *mapResultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	doc, ok := c.m[key]
	return doc, ok
}

func (c *mapResultCache) Put(key string, doc []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = doc
}

// execSweep is a 4-cell machines × strategies grid over the shared test
// base: two machine sizes, two strategy sets.
func execSweep() *Sweep {
	return &Sweep{
		Name: "exec",
		Base: sweepBase(),
		Axes: SweepAxes{
			Machines:   []MachinePoint{{Nodes: 8}, {Nodes: 16, Ranks: 128, ProcsPerNode: 8}},
			Strategies: [][]StrategySpec{{{Kind: "naive", Size: 8}}, {{Kind: "hierarchical"}}},
		},
	}
}

// TestRunSweepMatchesRunByteIdentical: every cell's document is
// byte-identical to marshalling Pipeline.Run of the expanded scenario —
// the same bytes POST /v1/evaluate caches — at any worker count.
func TestRunSweepMatchesRunByteIdentical(t *testing.T) {
	sw := execSweep()
	cells, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, len(cells))
	for i, sc := range cells {
		res, err := NewPipeline().Run(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		if want[i], err = json.Marshal(res); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 4} {
		report, err := NewPipeline().RunSweep(context.Background(), sw, SweepOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if report.CellsCompleted != len(cells) || report.CellsFailed != 0 || report.CellsFromCache != 0 {
			t.Fatalf("workers=%d: completed/failed/cached = %d/%d/%d, want %d/0/0",
				workers, report.CellsCompleted, report.CellsFailed, report.CellsFromCache, len(cells))
		}
		for i, cell := range report.Cells {
			if cell.Err != nil {
				t.Fatalf("workers=%d: cell %d: %v", workers, i, cell.Err)
			}
			if cell.Index != i || cell.Scenario != cells[i].Name {
				t.Fatalf("workers=%d: cell %d reports index %d name %q", workers, i, cell.Index, cell.Scenario)
			}
			if !bytes.Equal(cell.Doc, want[i]) {
				t.Errorf("workers=%d: cell %d (%s) doc diverges from Pipeline.Run:\n%s\nvs\n%s",
					workers, i, cell.Scenario, cell.Doc, want[i])
			}
		}
	}
}

// TestRunSweepSharedTraceBuildsOnce: N cells sharing one trace build it
// exactly once, asserted through both the executor's counters and the
// trace cache's own hit/miss statistics.
func TestRunSweepSharedTraceBuildsOnce(t *testing.T) {
	sw := &Sweep{
		Name: "shared-trace",
		Base: sweepBase(),
		Axes: SweepAxes{
			Strategies: [][]StrategySpec{{{Kind: "naive", Size: 8}}, {{Kind: "hierarchical"}}},
			Mixes: []MixSpec{
				{Transient: 0.05, NodeLoss: []float64{0.9}},
				{Transient: 0.5, NodeLoss: []float64{0.5}},
			},
		},
	}
	tc := NewMemoryTraceCache(8)
	pl := NewPipeline(WithTraceCache(tc), WithWorkers(4))
	report, err := pl.RunSweep(context.Background(), sw, SweepOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if report.CellsCompleted != 4 || report.CellsFailed != 0 {
		t.Fatalf("completed/failed = %d/%d, want 4/0", report.CellsCompleted, report.CellsFailed)
	}
	if report.TraceBuilds != 1 {
		t.Fatalf("executor performed %d trace builds, want 1", report.TraceBuilds)
	}
	if st := tc.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("trace cache hits/misses = %d/%d, want 0/1 (one build, shared by reference)", st.Hits, st.Misses)
	}
	if report.PartitionBuilds != 2 {
		t.Fatalf("executor performed %d partition builds, want 2 (one per strategy)", report.PartitionBuilds)
	}
	// Deterministic labels: the plan-designated builder (cell 0) reports
	// the build; every sharer reports trace-hit, at any schedule.
	for i, cell := range report.Cells {
		want := "trace-hit"
		if i == 0 {
			want = "miss"
		}
		if cell.Cache != want {
			t.Errorf("cell %d cache label %q, want %q", i, cell.Cache, want)
		}
	}
}

// TestRunSweepResubmitAllCacheHits: re-running a completed sweep against
// the same result cache evaluates nothing — every cell is a cache hit and
// no trace or partition work runs.
func TestRunSweepResubmitAllCacheHits(t *testing.T) {
	sw := execSweep()
	cache := newMapResultCache()
	pl := NewPipeline()
	first, err := pl.RunSweep(context.Background(), sw, SweepOptions{ResultCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if first.CellsCompleted != 4 || first.CellsFromCache != 0 {
		t.Fatalf("first run completed/cached = %d/%d, want 4/0", first.CellsCompleted, first.CellsFromCache)
	}
	second, err := pl.RunSweep(context.Background(), sw, SweepOptions{ResultCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if second.CellsFromCache != 4 || second.CellsCompleted != 0 || second.CellsFailed != 0 {
		t.Fatalf("resubmit completed/cached/failed = %d/%d/%d, want 0/4/0",
			second.CellsCompleted, second.CellsFromCache, second.CellsFailed)
	}
	if second.TraceBuilds != 0 || second.PartitionBuilds != 0 {
		t.Fatalf("resubmit rebuilt %d traces / %d partitions, want 0/0", second.TraceBuilds, second.PartitionBuilds)
	}
	for i, cell := range second.Cells {
		if cell.Cache != "hit" {
			t.Fatalf("resubmit cell %d cache label %q, want \"hit\"", i, cell.Cache)
		}
		if !bytes.Equal(cell.Doc, first.Cells[i].Doc) {
			t.Fatalf("resubmit cell %d served different bytes than the first run", i)
		}
	}
}

// TestRunSweepChaosFaultResume is the kill-mid-sweep drill: a seeded
// probabilistic fault fails some cells on the first run; the faults are
// cleared and the sweep is resubmitted against the same result cache,
// which must complete exactly the remaining cells — the survivors come
// back as cache hits without re-evaluation.
func TestRunSweepChaosFaultResume(t *testing.T) {
	sw := &Sweep{
		Name: "chaos",
		Base: sweepBase(),
		Axes: SweepAxes{
			Strategies: [][]StrategySpec{{{Kind: "naive", Size: 8}}, {{Kind: "hierarchical"}}},
			Mixes: []MixSpec{
				{Transient: 0.05, NodeLoss: []float64{0.9}},
				{Transient: 0.3, NodeLoss: []float64{0.7}},
				{Transient: 0.5, NodeLoss: []float64{0.5}},
				{Transient: 0.7, NodeLoss: []float64{0.3}},
			},
		},
	}
	cache := newMapResultCache()
	pl := NewPipeline()

	faultinject.Seed(42)
	faultinject.Arm("sweep.cell", faultinject.Fault{Kind: faultinject.KindError, P: 0.5})
	first, err := pl.RunSweep(context.Background(), sw, SweepOptions{Workers: 1, ResultCache: cache})
	faultinject.DisarmAll()
	if err != nil {
		t.Fatal(err)
	}
	if first.CellsFailed == 0 || first.CellsCompleted == 0 {
		t.Fatalf("seeded chaos run completed/failed = %d/%d, want both nonzero (pick a new seed)",
			first.CellsCompleted, first.CellsFailed)
	}

	second, err := pl.RunSweep(context.Background(), sw, SweepOptions{Workers: 1, ResultCache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if second.CellsFailed != 0 {
		t.Fatalf("resubmit failed %d cells", second.CellsFailed)
	}
	if second.CellsFromCache != first.CellsCompleted {
		t.Fatalf("resubmit served %d cells from cache, want the %d that survived the chaos run",
			second.CellsFromCache, first.CellsCompleted)
	}
	if second.CellsCompleted != first.CellsFailed {
		t.Fatalf("resubmit evaluated %d cells, want exactly the %d that failed",
			second.CellsCompleted, first.CellsFailed)
	}
}

// TestRunSweepCellPanicIsolated: an injected panic in every cell fails the
// cells, not the process or the sweep.
func TestRunSweepCellPanicIsolated(t *testing.T) {
	faultinject.Arm("sweep.cell", faultinject.Fault{Kind: faultinject.KindPanic, P: 1})
	defer faultinject.DisarmAll()
	report, err := NewPipeline().RunSweep(context.Background(), execSweep(), SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if report.CellsFailed != 4 {
		t.Fatalf("failed %d cells, want 4", report.CellsFailed)
	}
	for i, cell := range report.Cells {
		var pe *PanicError
		if !errors.As(cell.Err, &pe) {
			t.Fatalf("cell %d error %v, want a PanicError", i, cell.Err)
		}
	}
}

// TestRunSweepCancelBeforeDispatch: a cancelled context returns the
// context error with every cell marked, and nothing evaluates.
func TestRunSweepCancelBeforeDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	report, err := NewPipeline().RunSweep(ctx, execSweep(), SweepOptions{})
	if err != context.Canceled {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
	if report == nil || report.CellsFailed != 4 || report.CellsCompleted != 0 {
		t.Fatalf("cancelled sweep report = %+v, want 4 failed cells", report)
	}
	for i, cell := range report.Cells {
		if cell.Err == nil {
			t.Fatalf("cell %d has no error after cancellation", i)
		}
	}
}

// TestRunSweepAcquireGate: the admission hook is invoked once per computed
// cell (cache hits bypass it), its release always runs, and an acquire
// error fails just that cell.
func TestRunSweepAcquireGate(t *testing.T) {
	var mu sync.Mutex
	acquired, released := 0, 0
	opts := SweepOptions{
		Workers:     2,
		ResultCache: newMapResultCache(),
		Acquire: func(ctx context.Context) (func(), error) {
			mu.Lock()
			acquired++
			mu.Unlock()
			return func() {
				mu.Lock()
				released++
				mu.Unlock()
			}, nil
		},
	}
	report, err := NewPipeline().RunSweep(context.Background(), execSweep(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if report.CellsCompleted != 4 {
		t.Fatalf("completed %d cells, want 4", report.CellsCompleted)
	}
	if acquired != 4 || released != 4 {
		t.Fatalf("acquired/released = %d/%d, want 4/4", acquired, released)
	}

	// Second run: all cache hits, the gate must not be consulted.
	report, err = NewPipeline().RunSweep(context.Background(), execSweep(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if report.CellsFromCache != 4 || acquired != 4 {
		t.Fatalf("cache-hit run consulted the admission gate (acquired=%d)", acquired)
	}

	// An acquire error fails the cell, not the sweep.
	denied := SweepOptions{Acquire: func(ctx context.Context) (func(), error) {
		return nil, context.DeadlineExceeded
	}}
	report, err = NewPipeline().RunSweep(context.Background(), execSweep(), denied)
	if err != nil {
		t.Fatal(err)
	}
	if report.CellsFailed != 4 {
		t.Fatalf("denied admission failed %d cells, want 4", report.CellsFailed)
	}
}

// TestRunSweepOnCellStreams: OnCell fires exactly once per cell with the
// cell's final result.
func TestRunSweepOnCellStreams(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]int{}
	opts := SweepOptions{
		Workers: 4,
		OnCell: func(res SweepCellResult) {
			mu.Lock()
			seen[res.Index]++
			mu.Unlock()
		},
	}
	report, err := NewPipeline().RunSweep(context.Background(), execSweep(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(report.Cells) {
		t.Fatalf("OnCell covered %d cells, want %d", len(seen), len(report.Cells))
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("OnCell fired %d times for cell %d", n, idx)
		}
	}
}
