package hierclust

import (
	"bytes"
	"encoding/json"
	"fmt"

	"hierclust/internal/reliability"
	"hierclust/internal/topology"
)

// ScenarioVersion is the schema version this package writes and the newest
// it understands. Documents without a version field are implicit version 1
// (the schema shipped before the field existed) and decode unchanged;
// documents claiming a newer version are rejected with a
// *SchemaVersionError rather than misread.
const ScenarioVersion = 1

// SchemaVersionError reports a scenario document whose declared schema
// version this package does not understand. Callers can errors.As for it to
// distinguish "newer schema" from plain malformed input.
type SchemaVersionError struct {
	// Version is the version the document declared.
	Version int
	// Supported is the newest version this package decodes.
	Supported int
}

func (e *SchemaVersionError) Error() string {
	return fmt.Sprintf("hierclust: scenario schema version %d not supported (this package understands versions up to %d)",
		e.Version, e.Supported)
}

// Scenario declaratively describes one evaluation: a machine, a placement
// of application ranks onto it, a trace source, the strategies to compare,
// and optionally a failure mix and baseline (both defaulting to the paper's
// calibration). Scenarios encode to stable JSON — EncodeScenario →
// DecodeScenario → EncodeScenario is byte-identical — so experiments are
// data: they can be stored, diffed, POSTed to hcserve, and cached by value.
type Scenario struct {
	// Version is the schema version; 0 means ScenarioVersion (documents
	// predating the field are implicit version 1). EncodeScenario and
	// CacheKey always write the explicit current version, so stored
	// documents are self-describing.
	Version int `json:"version,omitempty"`
	// Name labels the scenario in results.
	Name string `json:"name"`
	// Machine selects and sizes the machine model.
	Machine MachineSpec `json:"machine"`
	// Placement maps ranks onto the machine.
	Placement PlacementSpec `json:"placement"`
	// Trace selects the communication-matrix source.
	Trace TraceSpec `json:"trace"`
	// Strategies lists the clustering strategies to evaluate, in output
	// order.
	Strategies []StrategySpec `json:"strategies"`
	// Mix overrides the failure-type distribution; nil uses the paper's
	// calibrated DefaultMix.
	Mix *MixSpec `json:"mix,omitempty"`
	// Baseline overrides the requirement envelope; nil uses the paper's
	// DefaultBaseline.
	Baseline *BaselineSpec `json:"baseline,omitempty"`
}

// MachineSpec selects a machine model. Model "tsubame2" (the default) uses
// the paper's Table I constants; Nodes restricts it to a job allocation.
type MachineSpec struct {
	// Model names the base machine: "" or "tsubame2". When Nodes exceeds
	// the model's node count the machine is grown, mirroring the scaling
	// experiments' synthetic rigs.
	Model string `json:"model,omitempty"`
	// Nodes is the allocation size; 0 uses the full machine.
	Nodes int `json:"nodes,omitempty"`
}

// PlacementSpec maps ranks onto the machine's nodes.
type PlacementSpec struct {
	// Policy is "block" (default: consecutive ranks share a node, the
	// paper's topology-aware placement) or "round-robin".
	Policy string `json:"policy,omitempty"`
	// Ranks is the application process count.
	Ranks int `json:"ranks"`
	// ProcsPerNode is the ranks-per-node density for block placement and
	// the used-node divisor for round-robin.
	ProcsPerNode int `json:"procs_per_node"`
}

// TraceSpec selects the communication-matrix source.
type TraceSpec struct {
	// Source is "tsunami" (trace the stencil application on the simulated
	// MPI runtime), "synthetic" (generate a stencil trace directly in
	// sparse form — the only source that scales past ~4k ranks), or
	// "file" (read a serialized HCTR trace).
	Source string `json:"source"`
	// Iterations is the traced or generated exchange-round count
	// (tsunami default 20, synthetic default 100).
	Iterations int `json:"iterations,omitempty"`
	// Pattern is the synthetic structure: "stencil1d" (default) or
	// "stencil2d".
	Pattern string `json:"pattern,omitempty"`
	// Width is the stencil2d grid width; 0 derives it from the placement
	// density so horizontal exchange stays intra-node, like the scaling
	// experiment's rigs.
	Width int `json:"width,omitempty"`
	// BytesPerMsg overrides the synthetic per-message payload.
	BytesPerMsg int64 `json:"bytes_per_msg,omitempty"`
	// Path locates the serialized trace for source "file".
	Path string `json:"path,omitempty"`
	// MaxRanks raises the file reader's rank-count plausibility bound
	// beyond the 2^22 default.
	MaxRanks int `json:"max_ranks,omitempty"`
}

// MixSpec is the declarative (JSON) form of the reliability failure mix.
type MixSpec struct {
	Transient       float64   `json:"transient"`
	NodeLoss        []float64 `json:"node_loss"`
	PairCorrelation float64   `json:"pair_correlation,omitempty"`
}

// Mix converts the spec to the model's Mix (normalized).
func (s *MixSpec) Mix() Mix {
	if s == nil {
		return reliability.DefaultMix()
	}
	m := Mix{Transient: s.Transient, NodeLoss: append([]float64(nil), s.NodeLoss...), PairCorrelation: s.PairCorrelation}
	m.Normalize()
	return m
}

// BaselineSpec is the declarative (JSON) form of the requirement envelope.
type BaselineSpec struct {
	MaxLoggedFraction   float64 `json:"max_logged_fraction"`
	MaxRecoveryFraction float64 `json:"max_recovery_fraction"`
	MaxEncodeSecPerGB   float64 `json:"max_encode_sec_per_gb"`
	MaxCatastropheProb  float64 `json:"max_catastrophe_prob"`
}

// Baseline converts the spec to the evaluator's Baseline.
func (s *BaselineSpec) Baseline() Baseline {
	if s == nil {
		return DefaultBaseline()
	}
	return Baseline{
		MaxLoggedFraction:   s.MaxLoggedFraction,
		MaxRecoveryFraction: s.MaxRecoveryFraction,
		MaxEncodeSecPerGB:   s.MaxEncodeSecPerGB,
		MaxCatastropheProb:  s.MaxCatastropheProb,
	}
}

// Validate checks everything that can be checked without building the
// machine: names, source kinds, strategy kinds, and arithmetic constraints.
func (s *Scenario) Validate() error {
	if s == nil {
		return fmt.Errorf("hierclust: nil scenario")
	}
	if s.Version < 0 || s.Version > ScenarioVersion {
		return &SchemaVersionError{Version: s.Version, Supported: ScenarioVersion}
	}
	if s.Name == "" {
		return fmt.Errorf("hierclust: scenario needs a name")
	}
	switch s.Machine.Model {
	case "", "tsubame2":
	default:
		return fmt.Errorf("hierclust: scenario %q: unknown machine model %q", s.Name, s.Machine.Model)
	}
	if s.Machine.Nodes < 0 {
		return fmt.Errorf("hierclust: scenario %q: negative node count %d", s.Name, s.Machine.Nodes)
	}
	switch s.Placement.Policy {
	case "", "block", "round-robin":
	default:
		return fmt.Errorf("hierclust: scenario %q: unknown placement policy %q", s.Name, s.Placement.Policy)
	}
	if s.Placement.Ranks <= 0 {
		return fmt.Errorf("hierclust: scenario %q: placement needs a positive rank count", s.Name)
	}
	if s.Placement.ProcsPerNode <= 0 {
		return fmt.Errorf("hierclust: scenario %q: placement needs positive procs_per_node", s.Name)
	}
	// Fields that don't apply to the chosen source are rejected, not
	// ignored: a user who sets them believes they tuned the trace, and the
	// dead fields would also split the result cache on meaningless keys.
	switch s.Trace.Source {
	case "tsunami":
		if err := s.rejectTraceFields("tsunami", "pattern", s.Trace.Pattern != "",
			"width", s.Trace.Width != 0, "bytes_per_msg", s.Trace.BytesPerMsg != 0,
			"path", s.Trace.Path != "", "max_ranks", s.Trace.MaxRanks != 0); err != nil {
			return err
		}
	case "synthetic":
		if err := s.rejectTraceFields("synthetic",
			"path", s.Trace.Path != "", "max_ranks", s.Trace.MaxRanks != 0); err != nil {
			return err
		}
		if s.Trace.Pattern != "stencil2d" && s.Trace.Width != 0 {
			return fmt.Errorf("hierclust: scenario %q: trace field width applies only to pattern \"stencil2d\"", s.Name)
		}
	case "file":
		if s.Trace.Path == "" {
			return fmt.Errorf("hierclust: scenario %q: trace source \"file\" needs a path", s.Name)
		}
		if err := s.rejectTraceFields("file", "iterations", s.Trace.Iterations != 0,
			"pattern", s.Trace.Pattern != "", "width", s.Trace.Width != 0,
			"bytes_per_msg", s.Trace.BytesPerMsg != 0); err != nil {
			return err
		}
	default:
		return fmt.Errorf("hierclust: scenario %q: unknown trace source %q (want tsunami, synthetic, or file)", s.Name, s.Trace.Source)
	}
	switch s.Trace.Pattern {
	case "", "stencil1d", "stencil2d":
	default:
		return fmt.Errorf("hierclust: scenario %q: unknown synthetic pattern %q", s.Name, s.Trace.Pattern)
	}
	if len(s.Strategies) == 0 {
		return fmt.Errorf("hierclust: scenario %q: needs at least one strategy", s.Name)
	}
	for i, spec := range s.Strategies {
		if _, err := NewStrategy(spec); err != nil {
			return fmt.Errorf("hierclust: scenario %q: strategy %d: %w", s.Name, i, err)
		}
	}
	if s.Mix != nil {
		m := s.Mix.Mix()
		if err := m.Validate(); err != nil {
			return fmt.Errorf("hierclust: scenario %q: %w", s.Name, err)
		}
	}
	return nil
}

// rejectTraceFields errors on the first (name, set) pair whose field is set
// but meaningless for the given trace source.
func (s *Scenario) rejectTraceFields(source string, pairs ...interface{}) error {
	for i := 0; i+1 < len(pairs); i += 2 {
		if pairs[i+1].(bool) {
			return fmt.Errorf("hierclust: scenario %q: trace field %s does not apply to source %q",
				s.Name, pairs[i].(string), source)
		}
	}
	return nil
}

// machine builds the machine model: the named base, subset or grown to the
// requested allocation.
func (s *Scenario) machine() (*Machine, error) {
	mach := topology.Tsubame2()
	nodes := s.Machine.Nodes
	if nodes == 0 || nodes == mach.Nodes {
		return mach, nil
	}
	if nodes < mach.Nodes {
		return mach.Subset(nodes)
	}
	grown := *mach
	grown.Nodes = nodes
	grown.Name = fmt.Sprintf("%s-scaled[%d]", mach.Name, nodes)
	return &grown, nil
}

// placement builds the rank→node mapping.
func (s *Scenario) placement(mach *Machine) (*Placement, error) {
	switch s.Placement.Policy {
	case "", "block":
		return topology.Block(mach, s.Placement.Ranks, s.Placement.ProcsPerNode)
	case "round-robin":
		used := (s.Placement.Ranks + s.Placement.ProcsPerNode - 1) / s.Placement.ProcsPerNode
		return topology.RoundRobin(mach, s.Placement.Ranks, used)
	}
	return nil, fmt.Errorf("hierclust: unknown placement policy %q", s.Placement.Policy)
}

// EncodeScenario renders the scenario as indented JSON with a stable field
// order and an explicit schema version. Encoding the result of
// DecodeScenario reproduces the input byte for byte for any document this
// function produced; a legacy version-less document re-encodes with the
// explicit "version" field inserted (and is otherwise unchanged).
func EncodeScenario(s *Scenario) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	versioned := *s
	versioned.Version = ScenarioVersion
	b, err := json.MarshalIndent(&versioned, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeScenario parses scenario JSON, rejecting unknown fields — a typo'd
// option must fail loudly, not silently evaluate the default. This is the
// schema migration point: documents without a version field are implicit
// version 1 and are upgraded to the explicit current version; documents
// declaring an unsupported version fail with a *SchemaVersionError.
func DecodeScenario(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("hierclust: decoding scenario: %w", err)
	}
	// A second document in the same payload is almost certainly a mistake.
	if dec.More() {
		return nil, fmt.Errorf("hierclust: trailing data after scenario JSON")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s.Version = ScenarioVersion // implicit v1 documents upgrade on decode
	return &s, nil
}

// CacheKey returns the canonical compact encoding used to key scenario
// result caches: two scenarios with equal keys evaluate identically. The
// schema version is normalized into the key, so implicit-v1 and explicit-v1
// forms of the same scenario share a cache entry.
func (s *Scenario) CacheKey() (string, error) {
	if err := s.Validate(); err != nil {
		return "", err
	}
	versioned := *s
	versioned.Version = ScenarioVersion
	b, err := json.Marshal(&versioned)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
