package hierclust

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync"

	"hierclust/internal/core"
	"hierclust/internal/faultinject"
	"hierclust/internal/trace"
	"hierclust/internal/tsunami"
)

// PanicError wraps a panic recovered at one of the pipeline's isolation
// boundaries — a strategy-evaluation worker goroutine, the singleflight
// trace build, or Run itself. The boundary converts a bug in one scenario
// (or an injected chaos panic) into an error on that Run instead of a dead
// process; hcserve maps it to a 500 with an incident id. Match with
// errors.As to reach the original value and stack.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("hierclust: internal panic: %v", e.Value)
}

// recoverAsError converts an in-flight panic into *PanicError at a defer
// boundary. It must be deferred directly (recover only works one frame up).
func recoverAsError(errp *error) {
	if v := recover(); v != nil {
		*errp = &PanicError{Value: v, Stack: debug.Stack()}
	}
}

// Pipeline runs scenarios through the trace→cluster→evaluate engine. The
// zero value is not usable; construct with NewPipeline. A Pipeline is safe
// for concurrent Run calls — hcserve shares one across requests.
type Pipeline struct {
	workers    int
	traceCache TraceCache

	// flight deduplicates concurrent builds of the same trace: when two
	// requests miss the trace cache on the same key, the second waits for
	// the first build instead of launching a second application run.
	flightMu sync.Mutex
	flight   map[string]*traceFlight
}

// traceFlight is one in-progress trace build; waiters block on done.
type traceFlight struct {
	done chan struct{}
	comm Comm
	err  error
}

// PipelineOption customizes a Pipeline.
type PipelineOption func(*Pipeline)

// WithWorkers bounds the worker pool used for concurrent strategy
// evaluation and for the reliability model's sharded enumeration/sampling.
// 0 (the default) means GOMAXPROCS. Results are bit-identical at any
// worker count.
func WithWorkers(n int) PipelineOption {
	return func(p *Pipeline) { p.workers = n }
}

// WithTraceCache caches built communication traces by Scenario.TraceKey,
// so scenarios that share a trace — same source, ranks, iterations, and
// generation parameters, any strategies/mix/baseline — never re-run the
// traced application or regenerate the stencil. Concurrent misses on the
// same key coalesce into one build. nil (the default) disables caching.
func WithTraceCache(tc TraceCache) PipelineOption {
	return func(p *Pipeline) { p.traceCache = tc }
}

// NewPipeline builds a pipeline with the given options.
func NewPipeline(opts ...PipelineOption) *Pipeline {
	p := &Pipeline{flight: map[string]*traceFlight{}}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Result is the outcome of running one scenario: the shared rig summary
// plus one evaluation per strategy, in scenario order. The JSON encoding is
// stable and is what hcserve returns from POST /v1/evaluate.
type Result struct {
	// Scenario echoes the scenario name.
	Scenario string `json:"scenario"`
	// Machine names the resolved machine model.
	Machine string `json:"machine"`
	// Ranks and Nodes describe the resolved placement.
	Ranks int `json:"ranks"`
	Nodes int `json:"nodes"`
	// TotalBytes and TotalMsgs summarize the trace.
	TotalBytes int64 `json:"total_bytes"`
	TotalMsgs  int64 `json:"total_msgs"`
	// Baseline is the envelope the evaluations were judged against.
	Baseline BaselineSpec `json:"baseline"`
	// Evaluations scores each strategy, in scenario order.
	Evaluations []StrategyResult `json:"evaluations"`
}

// StrategyResult is one strategy's clustering shape and four-dimension
// score.
type StrategyResult struct {
	// Strategy is the instantiated strategy name (e.g. "naive-32").
	Strategy string `json:"strategy"`
	// Kind is the registry kind that produced it.
	Kind string `json:"kind"`
	// L1Clusters, Groups and MaxGroupSize describe the clustering.
	L1Clusters   int `json:"l1_clusters"`
	Groups       int `json:"groups"`
	MaxGroupSize int `json:"max_group_size"`
	// The four dimensions of the paper's optimization space.
	LoggedFraction     float64 `json:"logged_fraction"`
	RecoveryFraction   float64 `json:"recovery_fraction"`
	EncodeSecondsPerGB float64 `json:"encode_seconds_per_gb"`
	CatastropheProb    float64 `json:"catastrophe_prob"`
	// WithinBaseline reports whether all four dimensions meet the
	// envelope; Violations lists the failing ones.
	WithinBaseline bool     `json:"within_baseline"`
	Violations     []string `json:"violations,omitempty"`
}

// Run evaluates a scenario. The context cancels the run — between stages,
// between strategy evaluations, and *inside* the reliability model's
// enumeration and Monte Carlo loops, so even a long chunked sampling run
// observes cancellation within milliseconds; a canceled run returns
// ctx.Err(). Strategies evaluate concurrently up to the pipeline's worker
// bound, and results are returned in scenario order regardless of
// completion order. A panic anywhere in the run (a strategy bug, a trace
// builder bug) is recovered at the nearest isolation boundary and returned
// as a *PanicError instead of crashing the process.
func (pl *Pipeline) Run(ctx context.Context, sc *Scenario) (res *Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	mach, err := sc.machine()
	if err != nil {
		return nil, err
	}
	placement, err := sc.placement(mach)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	comm, err := pl.resolveTrace(ctx, sc, placement)
	if err != nil {
		return nil, err
	}
	if comm.Ranks() != placement.NumRanks() {
		return nil, fmt.Errorf("hierclust: scenario %q: trace covers %d ranks, placement %d",
			sc.Name, comm.Ranks(), placement.NumRanks())
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	mix := sc.Mix.Mix()
	baseline := sc.Baseline.Baseline()
	res = resultShell(sc, mach, placement, comm, baseline)

	budget := pl.workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	workers := budget
	if workers > len(sc.Strategies) {
		workers = len(sc.Strategies)
	}
	// Every strategy evaluation is independent; the pool preserves input
	// order in the results slice. The worker budget splits across the
	// concurrent strategies, and the remainder of the budget goes to each
	// evaluation's reliability model (whose results are worker-invariant),
	// so a wide machine is not serialized on the slowest strategy.
	evalWorkers := budget / workers
	if evalWorkers < 1 {
		evalWorkers = 1
	}
	jobs := make(chan int)
	errs := make([]error, len(sc.Strategies))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				errs[i] = pl.evalStrategyIsolated(ctx, sc.Strategies[i], comm, placement, mix, baseline, evalWorkers, &res.Evaluations[i])
			}
		}()
	}
	cancelled := false
	for i := range sc.Strategies {
		if ctx.Err() != nil {
			cancelled = true
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if cancelled || ctx.Err() != nil {
		return nil, ctx.Err()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("hierclust: scenario %q: strategy %q: %w", sc.Name, sc.Strategies[i].Kind, err)
		}
	}
	return res, nil
}

// evalStrategyIsolated is evalStrategy behind the per-worker panic
// boundary: a panicking strategy (or the "pipeline.worker" chaos point)
// fails its own evaluation as a *PanicError without taking down the
// sibling workers or the process.
func (pl *Pipeline) evalStrategyIsolated(ctx context.Context, spec StrategySpec, comm Comm, placement *Placement, mix Mix, baseline Baseline, workers int, out *StrategyResult) (err error) {
	defer recoverAsError(&err)
	if err := faultinject.Hit("pipeline.worker"); err != nil {
		return err
	}
	return pl.evalStrategy(ctx, spec, comm, placement, mix, baseline, workers, out)
}

// evalStrategy builds and scores one strategy into out.
func (pl *Pipeline) evalStrategy(ctx context.Context, spec StrategySpec, comm Comm, placement *Placement, mix Mix, baseline Baseline, workers int, out *StrategyResult) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c, err := buildClustering(ctx, spec, comm, placement)
	if err != nil {
		return err
	}
	r, err := scoreClustering(ctx, c, spec.Kind, comm, placement, mix, baseline, workers)
	if err != nil {
		return err
	}
	*out = r
	return nil
}

// buildClustering instantiates a strategy spec and builds its clustering —
// the partition-level unit the sweep executor shares across cells via
// partitionKey. The built clustering is immutable downstream (scoring only
// reads it), so one build may be scored concurrently by many cells.
func buildClustering(ctx context.Context, spec StrategySpec, comm Comm, placement *Placement) (*Clustering, error) {
	st, err := NewStrategy(spec)
	if err != nil {
		return nil, err
	}
	var c *Clustering
	if cs, ok := st.(CtxStrategy); ok {
		c, err = cs.BuildCtx(ctx, comm, placement)
	} else {
		c, err = st.Build(comm, placement)
	}
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, err
	}
	return c, nil
}

// scoreClustering evaluates a built clustering on the four dimensions and
// renders the result row. Run and RunSweep share it, which is what makes a
// sweep cell's evaluation rows byte-identical to the single-scenario path.
func scoreClustering(ctx context.Context, c *Clustering, kind string, comm Comm, placement *Placement, mix Mix, baseline Baseline, workers int) (StrategyResult, error) {
	e, err := core.EvaluateOpts(c, comm, placement, mix, core.EvalOptions{Workers: workers, Ctx: ctx})
	if err != nil {
		return StrategyResult{}, err
	}
	ok, violations := e.Meets(baseline)
	return StrategyResult{
		Strategy:           c.Name,
		Kind:               kind,
		L1Clusters:         c.NumClusters(),
		Groups:             len(c.Groups),
		MaxGroupSize:       c.MaxGroupSize(),
		LoggedFraction:     e.LoggedFraction,
		RecoveryFraction:   e.RecoveryFraction,
		EncodeSecondsPerGB: e.EncodeSecondsPerGB,
		CatastropheProb:    e.CatastropheProb,
		WithinBaseline:     ok,
		Violations:         violations,
	}, nil
}

// resultShell assembles the shared header of a Result; Run and RunSweep
// both fill Evaluations afterwards, so the two paths cannot drift.
func resultShell(sc *Scenario, mach *Machine, placement *Placement, comm Comm, baseline Baseline) *Result {
	return &Result{
		Scenario:    sc.Name,
		Machine:     mach.Name,
		Ranks:       placement.NumRanks(),
		Nodes:       len(placement.UsedNodes()),
		TotalBytes:  comm.TotalBytes(),
		TotalMsgs:   comm.TotalMsgs(),
		Baseline:    baselineSpec(baseline),
		Evaluations: make([]StrategyResult, len(sc.Strategies)),
	}
}

// resolveTrace returns the scenario's communication matrix, consulting
// the trace cache (and the in-flight build table) before building. When
// the context carries a TraceInfo (WithTraceInfo), the hit/miss outcome
// is recorded there.
func (pl *Pipeline) resolveTrace(ctx context.Context, sc *Scenario, placement *Placement) (Comm, error) {
	info := traceInfoFrom(ctx)
	key, cacheable := "", false
	if pl.traceCache != nil {
		key, cacheable = sc.TraceKey()
	}
	if !cacheable {
		return pl.buildTrace(sc, placement)
	}
	if c, ok := pl.traceCache.Get(key); ok {
		if info != nil {
			info.Cache = "hit"
		}
		return c, nil
	}

	pl.flightMu.Lock()
	if f, ok := pl.flight[key]; ok {
		pl.flightMu.Unlock()
		// Another request is building this exact trace; share its result.
		// That counts as a hit: no new application run was started.
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if f.err != nil {
			return nil, f.err
		}
		if info != nil {
			info.Cache = "hit"
		}
		return f.comm, nil
	}
	f := &traceFlight{done: make(chan struct{})}
	pl.flight[key] = f
	pl.flightMu.Unlock()

	// The build runs behind its own panic boundary: a panicking trace
	// builder (or cache Put) must still remove the flight entry and close
	// done, or every waiter coalesced onto this build would block forever.
	func() {
		defer func() {
			pl.flightMu.Lock()
			delete(pl.flight, key)
			pl.flightMu.Unlock()
			close(f.done)
		}()
		defer recoverAsError(&f.err)
		if err := faultinject.Hit("pipeline.trace.build"); err != nil {
			f.err = err
			return
		}
		f.comm, f.err = pl.buildTrace(sc, placement)
		if f.err == nil {
			pl.traceCache.Put(key, f.comm)
		}
	}()

	if f.err != nil {
		return nil, f.err
	}
	if info != nil {
		info.Cache = "miss"
	}
	return f.comm, nil
}

// buildTrace resolves the scenario's trace source into a communication
// matrix: a real traced run, a generated stencil, or a serialized file.
func (pl *Pipeline) buildTrace(sc *Scenario, placement *Placement) (Comm, error) {
	ranks := placement.NumRanks()
	switch sc.Trace.Source {
	case "tsunami":
		iters := sc.Trace.Iterations
		if iters <= 0 {
			iters = 20
		}
		rec := trace.NewRecorder(ranks)
		if _, err := tsunami.RunTraced(tsunami.TracedOptions{
			Params:     tsunami.TraceParams(ranks),
			Iterations: iters,
			Tracer:     rec,
		}); err != nil {
			return nil, err
		}
		return rec.Matrix(), nil
	case "synthetic":
		opts := trace.SyntheticOptions{
			Iterations:  sc.Trace.Iterations,
			BytesPerMsg: sc.Trace.BytesPerMsg,
			Width:       sc.Trace.Width,
		}
		if sc.Trace.Pattern == "stencil2d" {
			opts.Pattern = trace.Stencil2D
			if opts.Width == 0 {
				// Grid width = placement density, so horizontal ghost
				// exchange stays intra-node under block placement.
				opts.Width = sc.Placement.ProcsPerNode
			}
		}
		return trace.Synthetic(ranks, opts)
	case "file":
		f, err := os.Open(sc.Trace.Path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var ropts []trace.ReadOptions
		if sc.Trace.MaxRanks > 0 {
			ropts = append(ropts, trace.ReadOptions{MaxRanks: sc.Trace.MaxRanks})
		}
		return trace.ReadCSR(f, ropts...)
	}
	return nil, fmt.Errorf("hierclust: unknown trace source %q", sc.Trace.Source)
}

// baselineSpec converts the evaluator's Baseline back to its declarative
// form for the result document.
func baselineSpec(b Baseline) BaselineSpec {
	return BaselineSpec{
		MaxLoggedFraction:   b.MaxLoggedFraction,
		MaxRecoveryFraction: b.MaxRecoveryFraction,
		MaxEncodeSecPerGB:   b.MaxEncodeSecPerGB,
		MaxCatastropheProb:  b.MaxCatastropheProb,
	}
}
