package hierclust

import (
	"hierclust/internal/checkpoint"
	"hierclust/internal/erasure"
	"hierclust/internal/hybrid"
	"hierclust/internal/storage"
	"hierclust/internal/tsunami"
)

// The execution layer: the substrates a clustering decision drives at run
// time — multi-level checkpointing, the hybrid rollback-recovery protocol,
// and the traced stencil application used throughout the paper.
type (
	// CheckpointLevel identifies a protection level (L1 local SSD …
	// L4 parallel file system).
	CheckpointLevel = checkpoint.Level
	// CheckpointManager orchestrates multi-level checkpoints.
	CheckpointManager = checkpoint.Manager
	// CheckpointResult reports the simulated and measured cost of one
	// checkpoint operation.
	CheckpointResult = checkpoint.Result
	// RestoredCheckpoint is one rank's recovered state and its source
	// level.
	RestoredCheckpoint = checkpoint.Restored
	// ClusterStore simulates the machine's storage hierarchy (node-local
	// SSDs plus the parallel file system) with failure injection.
	ClusterStore = storage.Cluster
	// HybridApp is the send-deterministic iterative application contract
	// the hybrid protocol drives.
	HybridApp = hybrid.App
	// HybridMessage is one application message within an iteration.
	HybridMessage = hybrid.Message
	// HybridConfig assembles a protocol instance from a placement and a
	// clustering decision.
	HybridConfig = hybrid.Config
	// HybridRunner executes a HybridApp under the hybrid protocol.
	HybridRunner = hybrid.Runner
	// HybridReport summarizes a protected run.
	HybridReport = hybrid.Report
	// FailureEvent describes one handled failure.
	FailureEvent = hybrid.FailureEvent
	// GroupEncoder erasure-codes one encoding group's shards.
	GroupEncoder = erasure.GroupEncoder
	// TsunamiParams configures the shallow-water stencil application.
	TsunamiParams = tsunami.Params
	// TsunamiSource is the initial Gaussian displacement.
	TsunamiSource = tsunami.Source
	// TsunamiApp is the stencil application wired for the hybrid
	// protocol (snapshot/restore per rank).
	TsunamiApp = tsunami.FTApp
	// TracedTsunamiOptions configures a traced run on the simulated MPI
	// runtime.
	TracedTsunamiOptions = tsunami.TracedOptions
)

// Checkpoint protection levels, cheapest first.
const (
	L1Local   = checkpoint.L1Local
	L2Partner = checkpoint.L2Partner
	L3Encoded = checkpoint.L3Encoded
	L3XOR     = checkpoint.L3XOR
	L4PFS     = checkpoint.L4PFS
)

// NewClusterStore builds the simulated storage hierarchy for a machine.
func NewClusterStore(m *Machine) *ClusterStore { return storage.NewCluster(m) }

// NewCheckpointManager creates a multi-level checkpoint manager over the
// given encoding groups (the L2 clusters of a hierarchical clustering).
func NewCheckpointManager(store *ClusterStore, p *Placement, groups [][]Rank) (*CheckpointManager, error) {
	return checkpoint.New(store, p, groups)
}

// CheckpointUnrecoverable reports whether err means no surviving level
// could restore a rank — the catastrophic failure of the reliability
// dimension.
func CheckpointUnrecoverable(err error) bool { return checkpoint.Unrecoverable(err) }

// NewHybridRunner validates the configuration and builds a protocol runner.
func NewHybridRunner(cfg HybridConfig, app HybridApp) (*HybridRunner, error) {
	return hybrid.NewRunner(cfg, app)
}

// NewGroupEncoder builds a Reed–Solomon RS(k,m) group codec.
func NewGroupEncoder(k, m, chunkSize, workers int) (*GroupEncoder, error) {
	return erasure.NewGroupEncoder(k, m, chunkSize, workers)
}

// DefaultTsunamiParams returns a stable mid-size simulation configuration.
func DefaultTsunamiParams(ranks int) TsunamiParams { return tsunami.DefaultParams(ranks) }

// TsunamiTraceParams returns the tracing grid the reproduction rigs use —
// thin slabs whose ghost exchange dominates the trace like the paper's
// real domain.
func TsunamiTraceParams(ranks int) TsunamiParams { return tsunami.TraceParams(ranks) }

// NewTsunamiApp builds the stencil application for a protected run.
func NewTsunamiApp(p TsunamiParams) (*TsunamiApp, error) { return tsunami.NewFTApp(p) }

// RunTracedTsunami executes the stencil on the simulated MPI runtime,
// feeding every message through the options' Tracer.
func RunTracedTsunami(o TracedTsunamiOptions) ([]float64, error) { return tsunami.RunTraced(o) }
