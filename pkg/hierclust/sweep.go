package hierclust

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// The paper's core result is a comparison — four clustering strategies
// across machine sizes and failure regimes — so production users ask grid
// questions ("every strategy × five machine sizes × three failure mixes,
// ranked by P(catastrophe)"), not point queries. A Sweep makes the grid
// the unit of work: a base Scenario plus cartesian axes over scenario
// fields, compiled by PlanSweep into a deduplicated DAG whose shared trace
// builds and partitions are computed once, and executed by
// Pipeline.RunSweep with per-cell results byte-identical to evaluating
// each expanded scenario alone.

// SweepVersion is the sweep schema version this package writes and the
// newest it understands.
const SweepVersion = 1

// SweepMaxCells is the absolute expansion bound: a sweep whose axes
// multiply out to more cells fails validation. Servers typically impose a
// (much) tighter bound before planning.
const SweepMaxCells = 1 << 16

// Sweep declares a grid of scenario evaluations: a base scenario plus
// cartesian axes over scenario fields. Like Scenario, a Sweep encodes to
// stable JSON (EncodeSweep → DecodeSweep → EncodeSweep is byte-identical)
// and has a canonical key (SweepKey), so sweeps are data: stored, POSTed
// to hcserve's /v1/sweeps, and resumed by value.
type Sweep struct {
	// Version is the sweep schema version; 0 means SweepVersion.
	Version int `json:"version,omitempty"`
	// Name labels the sweep; expanded cell names are derived from the
	// base scenario's name, not this one.
	Name string `json:"name"`
	// Base is the scenario every cell starts from. Axis values override
	// its fields; fields no axis covers are shared by every cell.
	Base Scenario `json:"base"`
	// Axes are the cartesian dimensions. An empty axis leaves the base
	// field untouched; a sweep with all axes empty has exactly one cell,
	// the base itself.
	Axes SweepAxes `json:"axes"`
}

// SweepAxes are the sweepable scenario dimensions. Cells expand in
// row-major order with Machines outermost and Traces innermost; see
// (*Sweep).Cells for the cell-naming scheme.
type SweepAxes struct {
	// Machines varies the machine size. Each point sets machine.nodes
	// and optionally re-sizes the placement with it, so a machine-size
	// axis can hold rank density constant across sizes.
	Machines []MachinePoint `json:"machines,omitempty"`
	// Placements varies the placement policy ("block", "round-robin").
	Placements []string `json:"placements,omitempty"`
	// Strategies varies the strategy set: each entry is a complete
	// replacement for the base scenario's strategies slice.
	Strategies [][]StrategySpec `json:"strategies,omitempty"`
	// Mixes varies the failure model: each entry replaces the base
	// scenario's mix.
	Mixes []MixSpec `json:"mixes,omitempty"`
	// Traces varies the trace generation parameters: each point overrides
	// the non-zero fields of the base trace spec (source is never
	// overridden).
	Traces []TracePoint `json:"traces,omitempty"`
}

// MachinePoint is one machine-size axis value.
type MachinePoint struct {
	// Nodes is the allocation size (required, positive).
	Nodes int `json:"nodes"`
	// Ranks, when positive, replaces the placement rank count.
	Ranks int `json:"ranks,omitempty"`
	// ProcsPerNode, when positive, replaces the placement density.
	ProcsPerNode int `json:"procs_per_node,omitempty"`
}

// TracePoint is one trace-parameter axis value: a partial override of the
// base TraceSpec. Zero fields inherit the base value.
type TracePoint struct {
	Iterations  int    `json:"iterations,omitempty"`
	Pattern     string `json:"pattern,omitempty"`
	Width       int    `json:"width,omitempty"`
	BytesPerMsg int64  `json:"bytes_per_msg,omitempty"`
}

// CellCount returns the number of cells the axes multiply out to, without
// expanding them. Counts past SweepMaxCells saturate to SweepMaxCells+1:
// such a sweep can never validate, and saturating keeps the product from
// overflowing int (four 65536-entry axes would otherwise wrap to 0 and
// slip under every bound check).
func (sw *Sweep) CellCount() int {
	n := 1
	for _, axis := range []int{
		len(sw.Axes.Machines), len(sw.Axes.Placements),
		len(sw.Axes.Strategies), len(sw.Axes.Mixes), len(sw.Axes.Traces),
	} {
		if axis <= 0 {
			continue
		}
		if axis > SweepMaxCells || n > SweepMaxCells/axis {
			return SweepMaxCells + 1
		}
		n *= axis
	}
	return n
}

// Validate checks the sweep: name, version, axis-value sanity, the
// expansion bound, and — by expanding — every cell. A sweep is valid
// exactly when every cell it expands to is a valid Scenario.
func (sw *Sweep) Validate() error {
	if sw == nil {
		return fmt.Errorf("hierclust: nil sweep")
	}
	if sw.Version < 0 || sw.Version > SweepVersion {
		return &SchemaVersionError{Version: sw.Version, Supported: SweepVersion}
	}
	if sw.Name == "" {
		return fmt.Errorf("hierclust: sweep needs a name")
	}
	if sw.Base.Name == "" {
		return fmt.Errorf("hierclust: sweep %q: base scenario needs a name", sw.Name)
	}
	for i, m := range sw.Axes.Machines {
		if m.Nodes <= 0 {
			return fmt.Errorf("hierclust: sweep %q: machines[%d]: nodes must be positive", sw.Name, i)
		}
		if m.Ranks < 0 || m.ProcsPerNode < 0 {
			return fmt.Errorf("hierclust: sweep %q: machines[%d]: negative ranks or procs_per_node", sw.Name, i)
		}
	}
	for i, set := range sw.Axes.Strategies {
		if len(set) == 0 {
			return fmt.Errorf("hierclust: sweep %q: strategies[%d]: empty strategy set", sw.Name, i)
		}
	}
	if sw.CellCount() > SweepMaxCells {
		return fmt.Errorf("hierclust: sweep %q: axes multiply out past the %d-cell bound", sw.Name, SweepMaxCells)
	}
	// Every cell must be a valid scenario. When the strategies axis is
	// set the base may omit its own strategy list (the axis replaces it
	// in every cell), so the base is validated only through its cells.
	if _, err := sw.cells(true); err != nil {
		return err
	}
	return nil
}

// Cells expands the sweep into its scenarios, in deterministic row-major
// axis order: Machines outermost, then Placements, Strategies, Mixes, and
// Traces innermost. Cell names derive from the base name plus one
// index-numbered segment per non-empty axis — "base/m0/p1/s0/x2/t0" with
// m=machines, p=placements, s=strategies, x=mixes, t=traces — so a cell's
// scenario (and therefore its CacheKey) can be written by hand: a sweep
// cell and the byte-identical hand-written scenario share one result-cache
// entry.
func (sw *Sweep) Cells() ([]*Scenario, error) {
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	return sw.cells(false)
}

// cells performs the expansion; with validate set, every cell is checked
// and errors carry the cell name.
func (sw *Sweep) cells(validate bool) ([]*Scenario, error) {
	// An empty axis contributes the single value "inherit the base".
	machines := sw.Axes.Machines
	if len(machines) == 0 {
		machines = []MachinePoint{{}}
	}
	placements := sw.Axes.Placements
	if len(placements) == 0 {
		placements = []string{""}
	}
	strategies := sw.Axes.Strategies
	if len(strategies) == 0 {
		strategies = [][]StrategySpec{nil}
	}
	mixes := sw.Axes.Mixes
	hasMixes := len(mixes) > 0
	if !hasMixes {
		mixes = []MixSpec{{}}
	}
	traces := sw.Axes.Traces
	if len(traces) == 0 {
		traces = []TracePoint{{}}
	}

	out := make([]*Scenario, 0, sw.CellCount())
	for mi, m := range machines {
		for pi, pol := range placements {
			for si, set := range strategies {
				for xi, mix := range mixes {
					for ti, tp := range traces {
						sc := sw.Base // value copy; slices replaced below, never mutated
						sc.Version = ScenarioVersion
						sc.Name = cellName(sw.Base.Name,
							axisSeg("m", mi, len(sw.Axes.Machines)),
							axisSeg("p", pi, len(sw.Axes.Placements)),
							axisSeg("s", si, len(sw.Axes.Strategies)),
							axisSeg("x", xi, len(sw.Axes.Mixes)),
							axisSeg("t", ti, len(sw.Axes.Traces)))
						if m.Nodes > 0 {
							sc.Machine.Nodes = m.Nodes
							if m.Ranks > 0 {
								sc.Placement.Ranks = m.Ranks
							}
							if m.ProcsPerNode > 0 {
								sc.Placement.ProcsPerNode = m.ProcsPerNode
							}
						}
						if pol != "" {
							sc.Placement.Policy = pol
						}
						if set != nil {
							sc.Strategies = append([]StrategySpec(nil), set...)
						}
						if hasMixes {
							mixCopy := mix
							mixCopy.NodeLoss = append([]float64(nil), mix.NodeLoss...)
							sc.Mix = &mixCopy
						}
						if tp.Iterations > 0 {
							sc.Trace.Iterations = tp.Iterations
						}
						if tp.Pattern != "" {
							sc.Trace.Pattern = tp.Pattern
						}
						if tp.Width > 0 {
							sc.Trace.Width = tp.Width
						}
						if tp.BytesPerMsg > 0 {
							sc.Trace.BytesPerMsg = tp.BytesPerMsg
						}
						if validate {
							if err := sc.Validate(); err != nil {
								return nil, fmt.Errorf("hierclust: sweep %q: cell %q: %w", sw.Name, sc.Name, err)
							}
						}
						out = append(out, &sc)
					}
				}
			}
		}
	}
	return out, nil
}

// axisSeg renders one cell-name segment, or "" for an inactive axis.
func axisSeg(tag string, idx, axisLen int) string {
	if axisLen == 0 {
		return ""
	}
	return fmt.Sprintf("/%s%d", tag, idx)
}

// cellName joins the base name with the active axis segments.
func cellName(base string, segs ...string) string {
	name := base
	for _, s := range segs {
		name += s
	}
	return name
}

// EncodeSweep renders the sweep as indented JSON with a stable field order
// and explicit schema versions (the sweep's and the embedded base
// scenario's). Encoding the result of DecodeSweep reproduces the input
// byte for byte for any document this function produced.
func EncodeSweep(sw *Sweep) ([]byte, error) {
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	versioned := *sw
	versioned.Version = SweepVersion
	versioned.Base.Version = ScenarioVersion
	b, err := json.MarshalIndent(&versioned, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeSweep parses sweep JSON, rejecting unknown fields anywhere in the
// document (a typo'd axis name must fail loudly, not silently sweep
// nothing). Version-less documents are implicit version 1.
func DecodeSweep(data []byte) (*Sweep, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sw Sweep
	if err := dec.Decode(&sw); err != nil {
		return nil, fmt.Errorf("hierclust: decoding sweep: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("hierclust: trailing data after sweep JSON")
	}
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	sw.Version = SweepVersion
	sw.Base.Version = ScenarioVersion
	return &sw, nil
}

// SweepKey returns the canonical compact encoding that identifies the
// sweep: two sweeps with equal keys expand to identical cells. Schema
// versions are normalized into the key, mirroring Scenario.CacheKey.
func (sw *Sweep) SweepKey() (string, error) {
	if err := sw.Validate(); err != nil {
		return "", err
	}
	versioned := *sw
	versioned.Version = SweepVersion
	versioned.Base.Version = ScenarioVersion
	b, err := json.Marshal(&versioned)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
