package hierclust_test

import (
	"context"
	"fmt"
	"log"

	"hierclust/pkg/hierclust"
)

// ExamplePipeline evaluates the paper's four strategies on a generated
// 2-D stencil trace — no traced application run needed — and reports which
// ones satisfy the paper's baseline requirements. The same scenario value,
// encoded with EncodeScenario, can be POSTed to hcserve's /v1/evaluate.
func ExamplePipeline() {
	scenario := &hierclust.Scenario{
		Name:      "example",
		Machine:   hierclust.MachineSpec{Model: "tsubame2", Nodes: 64},
		Placement: hierclust.PlacementSpec{Policy: "block", Ranks: 1024, ProcsPerNode: 16},
		Trace:     hierclust.TraceSpec{Source: "synthetic", Pattern: "stencil2d"},
		Strategies: []hierclust.StrategySpec{
			{Kind: "naive", Size: 32},
			{Kind: "size-guided", Size: 8},
			{Kind: "distributed", Size: 16},
			{Kind: "hierarchical"},
		},
	}

	pipeline := hierclust.NewPipeline(hierclust.WithWorkers(4))
	result, err := pipeline.Run(context.Background(), scenario)
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range result.Evaluations {
		verdict := "within baseline"
		if !ev.WithinBaseline {
			verdict = "FAILS baseline"
		}
		fmt.Printf("%s: %s\n", ev.Strategy, verdict)
	}
	// Output:
	// naive-32: FAILS baseline
	// size-guided-8: FAILS baseline
	// distributed-16: FAILS baseline
	// hierarchical: within baseline
}
