package hierclust

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"hierclust/internal/core"
)

// Strategy is a clustering strategy: given a communication matrix and a
// placement, it produces a complete clustering decision (L1 containment
// clusters plus L2 encoding groups). Implementations must be deterministic
// — the pipeline caches and compares results byte-for-byte — and safe for
// concurrent Build calls.
type Strategy interface {
	// Name labels the strategy in results and reports.
	Name() string
	// Build constructs the clustering for the given trace and placement.
	Build(m Comm, p *Placement) (*Clustering, error)
}

// CtxStrategy is an optional extension of Strategy for builds long enough
// to need cancellation: when a strategy implements it, the pipeline calls
// BuildCtx instead of Build, and a cancelled context must make the build
// return promptly (the built-in hierarchical strategy polls it between
// partitioner phases). A build that ignores the context is merely slower
// to cancel, never incorrect.
type CtxStrategy interface {
	Strategy
	BuildCtx(ctx context.Context, m Comm, p *Placement) (*Clustering, error)
}

// StrategySpec declaratively selects and parameterizes a strategy inside a
// Scenario. Kind names a registered factory; the remaining fields are that
// factory's parameters (unused fields stay zero and are omitted from JSON).
type StrategySpec struct {
	// Kind is the registry key: "naive", "size-guided", "distributed",
	// "hierarchical", or any third-party registration.
	Kind string `json:"kind"`
	// Size is the cluster size for the flat strategies (naive,
	// size-guided, distributed). 0 picks the kind's paper default.
	Size int `json:"size,omitempty"`
	// Hier tunes the hierarchical construction; nil picks the paper
	// defaults (4-node L1 minimum, 4-node L2 sub-groups).
	Hier *HierSpec `json:"hier,omitempty"`
}

// HierSpec is the declarative (JSON) form of HierOptions.
type HierSpec struct {
	MinNodesPerL1    int  `json:"min_nodes_per_l1,omitempty"`
	TargetNodesPerL1 int  `json:"target_nodes_per_l1,omitempty"`
	MaxNodesPerL1    int  `json:"max_nodes_per_l1,omitempty"`
	SubgroupNodes    int  `json:"subgroup_nodes,omitempty"`
	AlignPowerPairs  bool `json:"align_power_pairs,omitempty"`
	// Multilevel selects the coarsen/partition/uncoarsen node partitioner,
	// the scalable path for 10k+-node machines. The two tuning knobs below
	// apply only when it is set (0 picks the partitioner defaults).
	Multilevel       bool `json:"multilevel,omitempty"`
	CoarsenThreshold int  `json:"coarsen_threshold,omitempty"`
	MatchingRounds   int  `json:"matching_rounds,omitempty"`
}

// Options converts the spec to the constructor's option struct.
func (h *HierSpec) Options() HierOptions {
	if h == nil {
		return HierOptions{}
	}
	return HierOptions{
		MinNodesPerL1:    h.MinNodesPerL1,
		TargetNodesPerL1: h.TargetNodesPerL1,
		MaxNodesPerL1:    h.MaxNodesPerL1,
		SubgroupNodes:    h.SubgroupNodes,
		AlignPowerPairs:  h.AlignPowerPairs,
		Multilevel:       h.Multilevel,
		CoarsenThreshold: h.CoarsenThreshold,
		MatchingRounds:   h.MatchingRounds,
	}
}

// StrategyFactory instantiates a Strategy from its declarative spec,
// validating parameters that do not depend on the machine (machine-dependent
// validation belongs in Build).
type StrategyFactory func(spec StrategySpec) (Strategy, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]StrategyFactory{}
)

// RegisterStrategy adds a strategy factory under kind. Registering an
// already-registered kind is an error: built-ins cannot be silently
// shadowed, and double registration is almost always an init-order bug.
func RegisterStrategy(kind string, f StrategyFactory) error {
	if kind == "" || f == nil {
		return fmt.Errorf("hierclust: RegisterStrategy needs a kind and a factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[kind]; dup {
		return fmt.Errorf("hierclust: strategy kind %q already registered", kind)
	}
	registry[kind] = f
	return nil
}

// MustRegisterStrategy is RegisterStrategy that panics on error, for use in
// package init functions.
func MustRegisterStrategy(kind string, f StrategyFactory) {
	if err := RegisterStrategy(kind, f); err != nil {
		panic(err)
	}
}

// NewStrategy resolves a spec against the registry.
func NewStrategy(spec StrategySpec) (Strategy, error) {
	registryMu.RLock()
	f, ok := registry[spec.Kind]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("hierclust: unknown strategy kind %q (have %v)", spec.Kind, StrategyKinds())
	}
	return f(spec)
}

// StrategyKinds lists the registered kinds, sorted.
func StrategyKinds() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	kinds := make([]string, 0, len(registry))
	for k := range registry {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// The four built-in strategies of the paper. The flat three ignore the
// communication matrix by construction; the hierarchical one partitions it.

type flatStrategy struct {
	kind  string
	size  int
	build func(nranks, size int) (*Clustering, error)
}

func (s *flatStrategy) Name() string { return fmt.Sprintf("%s-%d", s.kind, s.size) }

func (s *flatStrategy) Build(m Comm, p *Placement) (*Clustering, error) {
	return s.build(p.NumRanks(), s.size)
}

type hierStrategy struct {
	name string
	opts HierOptions
}

func (s *hierStrategy) Name() string { return s.name }

func (s *hierStrategy) Build(m Comm, p *Placement) (*Clustering, error) {
	return s.BuildCtx(context.Background(), m, p)
}

// BuildCtx implements CtxStrategy: the partitioner polls the context
// between coarsening levels and refinement passes, so cancelling mid-build
// on a large machine returns within one phase instead of after the full
// partition. The clustering of an uncancelled build is identical to
// Build's.
func (s *hierStrategy) BuildCtx(ctx context.Context, m Comm, p *Placement) (*Clustering, error) {
	opts := s.opts
	if ctx.Done() != nil {
		opts.Cancel = func() bool { return ctx.Err() != nil }
	}
	c, err := core.Hierarchical(m, p, opts)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, err
	}
	c.Name = s.name // distinguish non-default variants in results
	return c, nil
}

// flatFactory builds a factory for one flat strategy kind with its paper
// default size (naive 32, size-guided 8, distributed 16 — the Table II
// configuration).
func flatFactory(kind string, defaultSize int, build func(int, int) (*Clustering, error)) StrategyFactory {
	return func(spec StrategySpec) (Strategy, error) {
		if spec.Hier != nil {
			return nil, fmt.Errorf("hierclust: strategy %q does not accept hier options", kind)
		}
		size := spec.Size
		if size == 0 {
			size = defaultSize
		}
		if size < 0 {
			return nil, fmt.Errorf("hierclust: strategy %q size %d must be positive", kind, size)
		}
		return &flatStrategy{kind: kind, size: size, build: build}, nil
	}
}

func init() {
	MustRegisterStrategy("naive", flatFactory("naive", 32, core.Naive))
	MustRegisterStrategy("size-guided", flatFactory("size-guided", 8, core.SizeGuided))
	MustRegisterStrategy("distributed", flatFactory("distributed", 16, core.Distributed))
	MustRegisterStrategy("hierarchical", func(spec StrategySpec) (Strategy, error) {
		if spec.Size != 0 {
			return nil, fmt.Errorf("hierclust: strategy \"hierarchical\" takes hier options, not size (got %d)", spec.Size)
		}
		// Multilevel tuning without multilevel is a mistake, not a no-op:
		// the user believes they tuned the partitioner, and the dead fields
		// would split the result cache on meaningless keys.
		if h := spec.Hier; h != nil && !h.Multilevel && (h.CoarsenThreshold != 0 || h.MatchingRounds != 0) {
			return nil, fmt.Errorf("hierclust: hier options coarsen_threshold/matching_rounds apply only with multilevel")
		}
		return &hierStrategy{name: hierName(spec.Hier), opts: spec.Hier.Options()}, nil
	})
}

// hierName distinguishes non-default hierarchical variants in results, the
// way flat strategies encode their size ("naive-32"): a scenario sweeping
// hier options must not produce indistinguishable rows. The default stays
// the paper's plain "hierarchical".
func hierName(h *HierSpec) string {
	if h == nil || *h == (HierSpec{}) {
		return "hierarchical"
	}
	name := "hierarchical"
	if h.MinNodesPerL1 != 0 {
		name += fmt.Sprintf("-min%d", h.MinNodesPerL1)
	}
	if h.TargetNodesPerL1 != 0 {
		name += fmt.Sprintf("-tgt%d", h.TargetNodesPerL1)
	}
	if h.MaxNodesPerL1 != 0 {
		name += fmt.Sprintf("-max%d", h.MaxNodesPerL1)
	}
	if h.SubgroupNodes != 0 {
		name += fmt.Sprintf("-sub%d", h.SubgroupNodes)
	}
	if h.AlignPowerPairs {
		name += "-pairs"
	}
	if h.Multilevel {
		name += "-ml"
		if h.CoarsenThreshold != 0 {
			name += fmt.Sprintf("-ct%d", h.CoarsenThreshold)
		}
		if h.MatchingRounds != 0 {
			name += fmt.Sprintf("-mr%d", h.MatchingRounds)
		}
	}
	return name
}
