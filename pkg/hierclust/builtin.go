package hierclust

import (
	"fmt"
	"sort"
)

// fourStrategies is the paper's Table II strategy set at the given flat
// sizes (hierarchical takes its defaults).
func fourStrategies(naive, sizeGuided, distributed int) []StrategySpec {
	return []StrategySpec{
		{Kind: "naive", Size: naive},
		{Kind: "size-guided", Size: sizeGuided},
		{Kind: "distributed", Size: distributed},
		{Kind: "hierarchical"},
	}
}

// BuiltinScenarios returns the named scenarios shipped with the package —
// the paper's experiments expressed as data. The slice is freshly built on
// every call; callers may mutate their copy.
func BuiltinScenarios() []*Scenario {
	scenarios := []*Scenario{
		{
			// The README quickstart: the four strategies on a traced
			// 256-rank tsunami run, the laptop-scale Table II.
			Name:       "quickstart",
			Machine:    MachineSpec{Model: "tsubame2", Nodes: 32},
			Placement:  PlacementSpec{Policy: "block", Ranks: 256, ProcsPerNode: 8},
			Trace:      TraceSpec{Source: "tsunami", Iterations: 25},
			Strategies: fourStrategies(32, 8, 8),
		},
		{
			// Table II at the harness's quick scale (hcrun -exp table2
			// -quick uses the same strategy sizes).
			Name:       "table2-quick",
			Machine:    MachineSpec{Model: "tsubame2", Nodes: 32},
			Placement:  PlacementSpec{Policy: "block", Ranks: 256, ProcsPerNode: 8},
			Trace:      TraceSpec{Source: "tsunami", Iterations: 20},
			Strategies: fourStrategies(16, 8, 8),
		},
		{
			// Table II at paper scale: 1024 ranks on 64 nodes × 16.
			Name:       "table2",
			Machine:    MachineSpec{Model: "tsubame2", Nodes: 64},
			Placement:  PlacementSpec{Policy: "block", Ranks: 1024, ProcsPerNode: 16},
			Trace:      TraceSpec{Source: "tsunami", Iterations: 100},
			Strategies: fourStrategies(32, 8, 16),
		},
		{
			// The scaling experiment's first synthetic rung: a generated
			// 2-D stencil at 4096 ranks, pure sparse pipeline.
			Name:       "synthetic-4k",
			Machine:    MachineSpec{Model: "tsubame2", Nodes: 256},
			Placement:  PlacementSpec{Policy: "block", Ranks: 4096, ProcsPerNode: 16},
			Trace:      TraceSpec{Source: "synthetic", Pattern: "stencil2d"},
			Strategies: fourStrategies(32, 8, 16),
		},
		{
			// The 64k-rank synthetic scale of the PR-2 benchmarks: 65,536
			// ranks on 4096 nodes, evaluable in tens of milliseconds.
			Name:       "synthetic-64k",
			Machine:    MachineSpec{Model: "tsubame2", Nodes: 4096},
			Placement:  PlacementSpec{Policy: "block", Ranks: 65536, ProcsPerNode: 16},
			Trace:      TraceSpec{Source: "synthetic", Pattern: "stencil2d"},
			Strategies: []StrategySpec{{Kind: "hierarchical"}},
		},
		{
			// The 262,144-rank / 16,384-node scale: the full clustering →
			// reliability pipeline through the multilevel partitioner and
			// the sparse placement, still bit-identical at any worker
			// count.
			Name:      "synthetic-256k",
			Machine:   MachineSpec{Model: "tsubame2", Nodes: 16384},
			Placement: PlacementSpec{Policy: "block", Ranks: 262144, ProcsPerNode: 16},
			Trace:     TraceSpec{Source: "synthetic", Pattern: "stencil2d"},
			Strategies: []StrategySpec{
				{Kind: "hierarchical", Hier: &HierSpec{Multilevel: true}},
			},
		},
	}
	for _, s := range scenarios {
		s.Version = ScenarioVersion // stored/served documents self-describe
	}
	return scenarios
}

// BuiltinScenario returns the named built-in scenario.
func BuiltinScenario(name string) (*Scenario, error) {
	var names []string
	for _, s := range BuiltinScenarios() {
		if s.Name == name {
			return s, nil
		}
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("hierclust: unknown built-in scenario %q (have %v)", name, names)
}
