package hierclust

import (
	"hierclust/internal/harness"
)

// The experiment layer re-exports the paper-reproduction harness: every
// table and figure of the paper's evaluation section as a named experiment.
// cmd/hcrun is a thin client of this surface; library users who want the
// scenario abstraction instead should use Pipeline with BuiltinScenario.
type (
	// ExperimentConfig scales the experiments (the zero value is the
	// paper's full configuration; Quick shrinks to laptop scale).
	ExperimentConfig = harness.Config
	// Experiment pairs an identifier with its table generator.
	Experiment = harness.Experiment
	// ExperimentTable is a rendered experiment result (ASCII and CSV).
	ExperimentTable = harness.Table
	// ExperimentResult is one experiment's outcome under the pooled
	// runner.
	ExperimentResult = harness.RunResult
)

// Experiments returns every experiment in paper order: table1, fig3a–fig5c,
// table2, plus the protocol, ablation, and scaling extensions.
func Experiments() []Experiment { return harness.All() }

// ExperimentByID returns the experiment with the given id.
func ExperimentByID(id string) (Experiment, error) { return harness.ByID(id) }

// RunExperiment executes and times a single experiment.
func RunExperiment(cfg ExperimentConfig, e Experiment) ExperimentResult {
	return harness.RunOne(cfg, e)
}

// RunExperiments executes experiments on a pool of workers and returns
// results in input order, byte-identical at any worker count.
func RunExperiments(cfg ExperimentConfig, exps []Experiment, workers int) []ExperimentResult {
	return harness.Run(cfg, exps, workers)
}

// DefaultExperimentWorkers is the pool size used when a caller passes 0.
func DefaultExperimentWorkers() int { return harness.DefaultWorkers() }

// ExperimentResultsJSON renders results as an indented JSON array.
func ExperimentResultsJSON(results []ExperimentResult) ([]byte, error) {
	return harness.ResultsJSON(results)
}

// WriteExperimentArtifacts stores an experiment's CSV (and, for the heatmap
// experiments, the full-resolution matrix as PGM/CSV) under dir.
func WriteExperimentArtifacts(dir string, table *ExperimentTable, cfg ExperimentConfig, id string) error {
	return harness.WriteArtifacts(dir, table, cfg, id)
}
