package hierclust

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

func TestStrategyKindsIncludeBuiltins(t *testing.T) {
	kinds := strings.Join(StrategyKinds(), ",")
	for _, want := range []string{"naive", "size-guided", "distributed", "hierarchical"} {
		if !strings.Contains(kinds, want) {
			t.Errorf("built-in kind %q missing from registry (%s)", want, kinds)
		}
	}
}

func TestRegisterStrategyRejectsDuplicates(t *testing.T) {
	if err := RegisterStrategy("naive", func(StrategySpec) (Strategy, error) { return nil, nil }); err == nil {
		t.Fatal("shadowing a built-in kind did not error")
	}
	if err := RegisterStrategy("", nil); err == nil {
		t.Fatal("empty registration did not error")
	}
}

func TestFlatStrategyDefaultsAndValidation(t *testing.T) {
	st, err := NewStrategy(StrategySpec{Kind: "naive"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Name() != "naive-32" {
		t.Fatalf("naive default = %q, want naive-32 (the paper's sweet spot)", st.Name())
	}
	if _, err := NewStrategy(StrategySpec{Kind: "naive", Hier: &HierSpec{}}); err == nil {
		t.Fatal("flat strategy accepted hier options")
	}
	if _, err := NewStrategy(StrategySpec{Kind: "hierarchical", Size: 8}); err == nil {
		t.Fatal("hierarchical strategy accepted a flat size")
	}
	if _, err := NewStrategy(StrategySpec{Kind: "nope"}); err == nil {
		t.Fatal("unknown kind resolved")
	}
}

// TestHierarchicalVariantNames: hierarchical variants must be
// distinguishable in results, like the flat strategies' "naive-32".
func TestHierarchicalVariantNames(t *testing.T) {
	plain, err := NewStrategy(StrategySpec{Kind: "hierarchical"})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Name() != "hierarchical" {
		t.Fatalf("default name = %q, want hierarchical", plain.Name())
	}
	variant, err := NewStrategy(StrategySpec{Kind: "hierarchical", Hier: &HierSpec{
		MinNodesPerL1: 8, SubgroupNodes: 4, AlignPowerPairs: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if variant.Name() != "hierarchical-min8-sub4-pairs" {
		t.Fatalf("variant name = %q, want hierarchical-min8-sub4-pairs", variant.Name())
	}
}

// everyOther is a deliberately simple third-party strategy: two striped
// containment clusters, paired encoding groups inside each.
type everyOther struct{}

func (everyOther) Name() string { return "every-other" }

func (everyOther) Build(m Comm, p *Placement) (*Clustering, error) {
	n := p.NumRanks()
	c := &Clustering{Name: "every-other", L1: make([]int, n)}
	for r := 0; r < n; r++ {
		c.L1[r] = r % 2
	}
	for base := 0; base+3 < n; base += 4 {
		c.Groups = append(c.Groups,
			[]Rank{Rank(base), Rank(base + 2)},
			[]Rank{Rank(base + 1), Rank(base + 3)})
	}
	return c, nil
}

// TestThirdPartyStrategy registers an out-of-repo strategy and runs it
// through the full scenario pipeline next to a built-in — the registry's
// reason to exist.
func TestThirdPartyStrategy(t *testing.T) {
	if err := RegisterStrategy("every-other", func(spec StrategySpec) (Strategy, error) {
		return everyOther{}, nil
	}); err != nil {
		// Another test in this process may have registered it already.
		if !strings.Contains(err.Error(), "already registered") {
			t.Fatal(err)
		}
	}
	sc := &Scenario{
		Name:      "third-party",
		Machine:   MachineSpec{Nodes: 16},
		Placement: PlacementSpec{Ranks: 64, ProcsPerNode: 4},
		Trace:     TraceSpec{Source: "synthetic", Iterations: 10},
		Strategies: []StrategySpec{
			{Kind: "every-other"},
			{Kind: "hierarchical"},
		},
	}
	res, err := NewPipeline().Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evaluations) != 2 {
		t.Fatalf("got %d evaluations, want 2", len(res.Evaluations))
	}
	if res.Evaluations[0].Strategy != "every-other" {
		t.Fatalf("first evaluation is %q, want every-other", res.Evaluations[0].Strategy)
	}
	// Striped clusters cut every stencil edge: logging must be ~100%.
	if lf := res.Evaluations[0].LoggedFraction; lf < 0.9 {
		t.Errorf("every-other logged fraction = %v, want ~1 (striped clusters log everything)", lf)
	}
	if res.Evaluations[1].Strategy != "hierarchical" {
		t.Fatalf("second evaluation is %q, want hierarchical", res.Evaluations[1].Strategy)
	}
}

func ExampleRegisterStrategy() {
	// Third-party strategies join the registry and then participate in
	// scenarios exactly like the built-ins.
	_ = RegisterStrategy("example-naive-4", func(spec StrategySpec) (Strategy, error) {
		return exampleNaive4{}, nil
	})
	st, _ := NewStrategy(StrategySpec{Kind: "example-naive-4"})
	fmt.Println(st.Name())
	// Output: example-naive-4
}

type exampleNaive4 struct{}

func (exampleNaive4) Name() string { return "example-naive-4" }
func (exampleNaive4) Build(m Comm, p *Placement) (*Clustering, error) {
	return Naive(p.NumRanks(), 4)
}
