package hierclust

import (
	"testing"
)

// DecodeScenario and DecodeSweep are hcserve's unauthenticated HTTP parse
// surface: every byte of every POST body flows through one of them before
// anything else looks at it. The fuzz targets below pin two properties:
// no input crashes the decoder, and anything the decoder accepts
// round-trips — it re-encodes, re-decodes, and produces a stable
// canonical cache key (the key the result cache and sweep journal both
// trust for identity).

func FuzzDecodeScenario(f *testing.F) {
	for _, s := range BuiltinScenarios() {
		doc, err := EncodeScenario(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(doc)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"name":"x"}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"version":1} trailing`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeScenario(data)
		if err != nil {
			return // rejected input; only crashes are failures
		}
		key, err := s.CacheKey()
		if err != nil || key == "" {
			t.Fatalf("accepted scenario has no cache key: %v", err)
		}
		doc, err := EncodeScenario(s)
		if err != nil {
			t.Fatalf("accepted scenario does not re-encode: %v", err)
		}
		s2, err := DecodeScenario(doc)
		if err != nil {
			t.Fatalf("re-encoded scenario does not decode: %v", err)
		}
		key2, err := s2.CacheKey()
		if err != nil || key2 != key {
			t.Fatalf("cache key unstable across round trip: %q vs %q (%v)", key, key2, err)
		}
	})
}

func FuzzDecodeSweep(f *testing.F) {
	base := BuiltinScenarios()[0]
	baseDoc, err := EncodeScenario(base)
	if err != nil {
		f.Fatal(err)
	}
	sweepDoc := []byte(`{"version":1,"name":"fuzz-grid","base":` + string(baseDoc) +
		`,"axes":[{"field":"placement.nodes","values":[4,8]}]}`)
	f.Add(sweepDoc)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"base":{}}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Validate expands every cell, so bound the input: a few KiB of
		// JSON cannot describe a legitimate sweep large enough to matter,
		// but a hostile axes blow-up could stall the fuzzer.
		if len(data) > 4<<10 {
			return
		}
		sw, err := DecodeSweep(data)
		if err != nil {
			return
		}
		key, err := sw.SweepKey()
		if err != nil || key == "" {
			t.Fatalf("accepted sweep has no sweep key: %v", err)
		}
		doc, err := EncodeSweep(sw)
		if err != nil {
			t.Fatalf("accepted sweep does not re-encode: %v", err)
		}
		sw2, err := DecodeSweep(doc)
		if err != nil {
			t.Fatalf("re-encoded sweep does not decode: %v", err)
		}
		key2, err := sw2.SweepKey()
		if err != nil || key2 != key {
			t.Fatalf("sweep key unstable across round trip: %q vs %q (%v)", key, key2, err)
		}
		if sw.CellCount() != sw2.CellCount() {
			t.Fatalf("cell count changed across round trip: %d vs %d", sw.CellCount(), sw2.CellCount())
		}
	})
}
