package hierclust

import (
	"testing"

	"hierclust/internal/leakcheck"
)

// TestMain asserts the suite — including cancelled Runs, injected panics,
// and degraded-cache chaos — leaks no goroutines (cancellation watchers,
// singleflight builders, worker pools all joined).
func TestMain(m *testing.M) { leakcheck.Main(m) }
