package hierclust

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestScenarioRoundTrip pins the JSON stability contract: encode → decode →
// encode is byte-identical for every built-in scenario and for a scenario
// exercising every optional field.
func TestScenarioRoundTrip(t *testing.T) {
	scenarios := BuiltinScenarios()
	scenarios = append(scenarios, &Scenario{
		Name:      "kitchen-sink",
		Machine:   MachineSpec{Model: "tsubame2", Nodes: 8192},
		Placement: PlacementSpec{Policy: "round-robin", Ranks: 1024, ProcsPerNode: 16},
		Trace: TraceSpec{
			Source: "synthetic", Pattern: "stencil2d", Width: 32,
			Iterations: 50, BytesPerMsg: 4096,
		},
		Strategies: []StrategySpec{
			{Kind: "naive", Size: 16},
			{Kind: "hierarchical", Hier: &HierSpec{
				MinNodesPerL1: 8, TargetNodesPerL1: 8, MaxNodesPerL1: 64,
				SubgroupNodes: 4, AlignPowerPairs: true,
				Multilevel: true, CoarsenThreshold: 64, MatchingRounds: 2,
			}},
		},
		Mix:      &MixSpec{Transient: 0.05, NodeLoss: []float64{0.9, 0.05}, PairCorrelation: 0.5},
		Baseline: &BaselineSpec{MaxLoggedFraction: 0.3, MaxRecoveryFraction: 0.3, MaxEncodeSecPerGB: 120, MaxCatastropheProb: 1e-2},
	})
	for _, sc := range scenarios {
		t.Run(sc.Name, func(t *testing.T) {
			enc1, err := EncodeScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := DecodeScenario(enc1)
			if err != nil {
				t.Fatal(err)
			}
			enc2, err := EncodeScenario(dec)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc1, enc2) {
				t.Fatalf("encode→decode→encode not byte-stable:\nfirst:\n%s\nsecond:\n%s", enc1, enc2)
			}
			key1, err := sc.CacheKey()
			if err != nil {
				t.Fatal(err)
			}
			key2, err := dec.CacheKey()
			if err != nil {
				t.Fatal(err)
			}
			if key1 != key2 {
				t.Fatalf("cache keys diverge across a round trip:\n%s\n%s", key1, key2)
			}
		})
	}
}

// TestDecodeScenarioRejectsUnknownFields: a typo'd option must fail loudly
// instead of silently evaluating the default.
func TestDecodeScenarioRejectsUnknownFields(t *testing.T) {
	doc := `{
		"name": "typo",
		"machine": {"nodes": 32},
		"placement": {"ranks": 256, "procs_per_node": 8},
		"trace": {"source": "synthetic", "iterattions": 50},
		"strategies": [{"kind": "hierarchical"}]
	}`
	if _, err := DecodeScenario([]byte(doc)); err == nil {
		t.Fatal("decoded a scenario with an unknown field")
	} else if !strings.Contains(err.Error(), "iterattions") {
		t.Fatalf("error does not name the unknown field: %v", err)
	}
}

func TestDecodeScenarioRejectsTrailingData(t *testing.T) {
	sc := BuiltinScenarios()[0]
	doc, err := EncodeScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeScenario(append(doc, []byte("{}")...)); err == nil {
		t.Fatal("accepted trailing data after the scenario document")
	}
}

func TestScenarioValidate(t *testing.T) {
	valid := func() *Scenario {
		return &Scenario{
			Name:       "v",
			Machine:    MachineSpec{Nodes: 32},
			Placement:  PlacementSpec{Ranks: 256, ProcsPerNode: 8},
			Trace:      TraceSpec{Source: "synthetic"},
			Strategies: []StrategySpec{{Kind: "hierarchical"}},
		}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"empty name", func(s *Scenario) { s.Name = "" }},
		{"bad machine model", func(s *Scenario) { s.Machine.Model = "summit" }},
		{"bad placement policy", func(s *Scenario) { s.Placement.Policy = "scatter" }},
		{"zero ranks", func(s *Scenario) { s.Placement.Ranks = 0 }},
		{"zero ppn", func(s *Scenario) { s.Placement.ProcsPerNode = 0 }},
		{"bad trace source", func(s *Scenario) { s.Trace.Source = "pcap" }},
		{"file without path", func(s *Scenario) { s.Trace.Source = "file" }},
		{"bad pattern", func(s *Scenario) { s.Trace.Pattern = "torus" }},
		{"no strategies", func(s *Scenario) { s.Strategies = nil }},
		{"tsunami with synthetic fields", func(s *Scenario) {
			s.Trace = TraceSpec{Source: "tsunami", Pattern: "stencil2d", BytesPerMsg: 4096}
		}},
		{"synthetic with file fields", func(s *Scenario) {
			s.Trace = TraceSpec{Source: "synthetic", Path: "/tmp/t.hctr"}
		}},
		{"file with synthetic fields", func(s *Scenario) {
			s.Trace = TraceSpec{Source: "file", Path: "/tmp/t.hctr", Iterations: 10}
		}},
		{"width without stencil2d", func(s *Scenario) {
			s.Trace = TraceSpec{Source: "synthetic", Width: 32}
		}},
		{"unknown strategy kind", func(s *Scenario) { s.Strategies = []StrategySpec{{Kind: "magic"}} }},
		{"negative mix", func(s *Scenario) { s.Mix = &MixSpec{Transient: -1} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := valid()
			tc.mutate(s)
			if err := s.Validate(); err == nil {
				t.Fatalf("scenario with %s validated", tc.name)
			}
		})
	}
}

func TestBuiltinScenarioLookup(t *testing.T) {
	sc, err := BuiltinScenario("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Placement.Ranks != 256 {
		t.Fatalf("quickstart ranks = %d, want 256", sc.Placement.Ranks)
	}
	if _, err := BuiltinScenario("nope"); err == nil {
		t.Fatal("unknown builtin did not error")
	}
	for _, sc := range BuiltinScenarios() {
		if err := sc.Validate(); err != nil {
			t.Errorf("builtin %q invalid: %v", sc.Name, err)
		}
	}
}

// TestScenarioVersionMigration pins the schema versioning contract:
// documents without a version field are implicit v1 and upgrade on decode,
// encoded documents always carry the explicit version, and both forms share
// one cache key.
func TestScenarioVersionMigration(t *testing.T) {
	implicit := `{
		"name": "legacy",
		"machine": {"nodes": 32},
		"placement": {"ranks": 256, "procs_per_node": 8},
		"trace": {"source": "synthetic"},
		"strategies": [{"kind": "hierarchical"}]
	}`
	dec, err := DecodeScenario([]byte(implicit))
	if err != nil {
		t.Fatalf("implicit-v1 document rejected: %v", err)
	}
	if dec.Version != ScenarioVersion {
		t.Fatalf("decoded version = %d, want %d (implicit v1 upgrades)", dec.Version, ScenarioVersion)
	}
	enc, err := EncodeScenario(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(enc), "\"version\": 1") {
		t.Fatalf("encoded scenario lacks explicit version:\n%s", enc)
	}
	explicit := strings.Replace(implicit, `"name"`, `"version": 1, "name"`, 1)
	dec2, err := DecodeScenario([]byte(explicit))
	if err != nil {
		t.Fatalf("explicit-v1 document rejected: %v", err)
	}
	k1, err := dec.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := dec2.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("implicit and explicit v1 forms key differently:\n%s\n%s", k1, k2)
	}
}

// An unknown schema version must fail with the typed error, not decode as
// whatever this package happens to assume.
func TestScenarioVersionUnsupported(t *testing.T) {
	doc := `{
		"version": 99,
		"name": "future",
		"machine": {"nodes": 32},
		"placement": {"ranks": 256, "procs_per_node": 8},
		"trace": {"source": "synthetic"},
		"strategies": [{"kind": "hierarchical"}]
	}`
	_, err := DecodeScenario([]byte(doc))
	if err == nil {
		t.Fatal("decoded a version-99 scenario")
	}
	var ve *SchemaVersionError
	if !errors.As(err, &ve) {
		t.Fatalf("error is %T, want *SchemaVersionError: %v", err, err)
	}
	if ve.Version != 99 || ve.Supported != ScenarioVersion {
		t.Fatalf("SchemaVersionError = %+v, want Version 99 Supported %d", ve, ScenarioVersion)
	}
}

// Multilevel tuning knobs without multilevel itself must be rejected — dead
// fields would split the result cache on meaningless keys.
func TestHierSpecMultilevelKnobsRequireMultilevel(t *testing.T) {
	_, err := NewStrategy(StrategySpec{Kind: "hierarchical", Hier: &HierSpec{CoarsenThreshold: 64}})
	if err == nil {
		t.Fatal("accepted coarsen_threshold without multilevel")
	}
	if _, err := NewStrategy(StrategySpec{Kind: "hierarchical", Hier: &HierSpec{Multilevel: true, CoarsenThreshold: 64, MatchingRounds: 2}}); err != nil {
		t.Fatalf("rejected valid multilevel spec: %v", err)
	}
}
