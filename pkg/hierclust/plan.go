package hierclust

import (
	"encoding/json"
	"fmt"
)

// PlanSweep compiles a sweep into its deduplicated evaluation DAG. The
// plan is pure data — which cells exist, in what order, and which of their
// expensive intermediates (trace builds, clustering/partition builds) are
// shared — so callers can inspect the dedup ratio, bound job admission,
// and report progress before any work runs. Pipeline.RunSweep executes it.

// SweepPlan is the compiled form of a sweep: the expanded cells in
// deterministic order plus the shared-node tables.
type SweepPlan struct {
	// Sweep is the declaration the plan was compiled from.
	Sweep *Sweep
	// Cells lists the expanded cells in expansion (result) order.
	Cells []PlannedCell

	// TraceBuilds is the number of distinct trace builds the plan needs:
	// one per shared trace node plus one per cell whose trace source is
	// uncacheable ("file"). TraceRefs counts every cell's demand for a
	// trace; TraceRefs - TraceBuilds builds are saved by sharing.
	TraceBuilds int
	// TraceRefs is the total per-cell trace demand (= len(Cells)).
	TraceRefs int
	// PartitionBuilds / PartitionRefs are the same accounting for
	// strategy clustering builds (one ref per strategy per cell).
	PartitionBuilds int
	PartitionRefs   int
}

// PlannedCell is one cell of the compiled DAG.
type PlannedCell struct {
	// Index is the cell's position in expansion order.
	Index int
	// Scenario is the fully expanded scenario this cell evaluates.
	Scenario *Scenario
	// CacheKey is Scenario.CacheKey() — the key the cell's rendered
	// result is cached and resumed under, shared byte-for-byte with a
	// hand-written scenario of the same content.
	CacheKey string
	// TraceNode is the shared trace-node id this cell consumes, or -1
	// when the cell's trace is uncacheable and built privately.
	TraceNode int
	// TraceBuilder is true on the first cell (in expansion order)
	// referencing the cell's trace node: the cell whose result reports
	// the underlying build ("miss") rather than the shared fan-out
	// ("trace-hit"). Always true for private traces.
	TraceBuilder bool
	// PartNodes holds, per strategy (in scenario order), the shared
	// partition-node id, or -1 for a privately built clustering.
	PartNodes []int
}

// partitionKey returns the canonical key identifying the clustering a
// strategy spec builds for a scenario, and whether it is shareable. Two
// (scenario, spec) pairs with equal keys build bit-identical clusterings:
// the key folds in the machine, the placement, the trace identity (a
// clustering may read the communication matrix), and the full strategy
// spec. Scenarios differing only in mix, baseline, name, or sibling
// strategies share a partition. An uncacheable trace ("file" source)
// makes the partition unshareable too: the bytes behind a path are not a
// value.
func partitionKey(sc *Scenario, spec StrategySpec) (string, bool) {
	traceKey, ok := sc.TraceKey()
	if !ok {
		return "", false
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return "", false
	}
	return fmt.Sprintf("part|model=%s|nodes=%d|policy=%s|ranks=%d|ppn=%d|%s|%s",
		sc.Machine.Model, sc.Machine.Nodes,
		sc.Placement.Policy, sc.Placement.Ranks, sc.Placement.ProcsPerNode,
		traceKey, specJSON), true
}

// PlanSweep validates and compiles a sweep. The returned plan's cells are
// in expansion order; shared-node ids are dense indices assigned in first-
// reference order.
func PlanSweep(sw *Sweep) (*SweepPlan, error) {
	cells, err := sw.Cells()
	if err != nil {
		return nil, err
	}
	plan := &SweepPlan{Sweep: sw, Cells: make([]PlannedCell, len(cells))}
	traceIDs := map[string]int{}
	partIDs := map[string]int{}
	for i, sc := range cells {
		key, err := sc.CacheKey()
		if err != nil {
			return nil, fmt.Errorf("hierclust: sweep %q: cell %q: %w", sw.Name, sc.Name, err)
		}
		cell := PlannedCell{Index: i, Scenario: sc, CacheKey: key, TraceNode: -1, TraceBuilder: true}
		plan.TraceRefs++
		if tk, ok := sc.TraceKey(); ok {
			id, seen := traceIDs[tk]
			if !seen {
				id = len(traceIDs)
				traceIDs[tk] = id
			}
			cell.TraceNode = id
			cell.TraceBuilder = !seen
		} else {
			plan.TraceBuilds++ // private build
		}
		cell.PartNodes = make([]int, len(sc.Strategies))
		for j, spec := range sc.Strategies {
			plan.PartitionRefs++
			cell.PartNodes[j] = -1
			if pk, ok := partitionKey(sc, spec); ok {
				id, seen := partIDs[pk]
				if !seen {
					id = len(partIDs)
					partIDs[pk] = id
				}
				cell.PartNodes[j] = id
			} else {
				plan.PartitionBuilds++ // private build
			}
		}
		plan.Cells[i] = cell
	}
	plan.TraceBuilds += len(traceIDs)
	plan.PartitionBuilds += len(partIDs)
	return plan, nil
}

// DedupRatio is the fraction of the naive per-cell build work the plan
// eliminates by sharing: 1 - (planned builds / per-cell references),
// counting trace and partition builds together. 0 means nothing is
// shared; a 4-cell sweep over strategies of one scenario family
// approaches 0.75 on the trace axis.
func (p *SweepPlan) DedupRatio() float64 {
	refs := p.TraceRefs + p.PartitionRefs
	if refs == 0 {
		return 0
	}
	return 1 - float64(p.TraceBuilds+p.PartitionBuilds)/float64(refs)
}
