package hierclust

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hierclust/internal/faultinject"
)

// TestDiskResultCacheRestartServesBitIdentical pins the restart-survival
// contract: documents stored by one cache instance serve byte-identically
// from a fresh instance over the same directory, and a disk hit counts on
// the new instance's stats.
func TestDiskResultCacheRestartServesBitIdentical(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewDiskResultCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	doc := []byte(`{"scenario":{"name":"fig4a"},"results":[1,2,3]}`)
	c1.Put("key-a", doc)

	c2, err := NewDiskResultCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get("key-a")
	if !ok || !bytes.Equal(got, doc) {
		t.Fatalf("restarted cache Get = %q, %v; want the original document", got, ok)
	}
	st := c2.Stats()
	if st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("Stats = %+v; want 1 hit, 1 entry", st)
	}
	// The returned slice is the caller's: mutating it must not corrupt
	// later reads.
	got[0] = 'X'
	again, ok := c2.Get("key-a")
	if !ok || !bytes.Equal(again, doc) {
		t.Fatal("cached document corrupted by caller mutation")
	}
}

// TestDiskResultCacheDegradesOnWriteFaults drives the result cache
// through the same degrade-don't-fail path the trace cache pins: a
// retried-out write flips memory-only mode, the fallback keeps serving
// the document bit-identically, and a probe write clears the mode.
func TestDiskResultCacheDegradesOnWriteFaults(t *testing.T) {
	defer faultinject.DisarmAll()
	dir := t.TempDir()
	c, err := NewDiskResultCache(dir, 1<<20, WithDegradedProbe(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Arm("resultcache.disk.write", faultinject.Fault{Kind: faultinject.KindError})
	doc := []byte(`{"results":"expensive to recompute"}`)
	c.Put("key-a", doc)
	st := c.Stats()
	if st.WriteErrors != diskOpAttempts {
		t.Fatalf("WriteErrors = %d; want %d (every attempt charged)", st.WriteErrors, diskOpAttempts)
	}
	if !st.Degraded {
		t.Fatal("cache not degraded after a retried-out write")
	}
	if st.MemEntries != 1 {
		t.Fatalf("MemEntries = %d; want 1 (fallback holds the document)", st.MemEntries)
	}
	if got, ok := c.Get("key-a"); !ok || !bytes.Equal(got, doc) {
		t.Fatalf("degraded Get = %q, %v; want the document bit-identical", got, ok)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*")); len(files) != 0 {
		t.Fatalf("degraded cache left files on disk: %v", files)
	}

	faultinject.DisarmAll()
	time.Sleep(10 * time.Millisecond)
	c.Put("key-b", []byte(`{"results":"probe"}`)) // recovery probe
	st = c.Stats()
	if st.Degraded {
		t.Fatal("cache still degraded after a successful probe write")
	}
	if st.Entries != 1 {
		t.Fatalf("Entries = %d; want 1 (the probe document)", st.Entries)
	}
}

// TestDiskResultCacheQuarantinesCorruptFile pins the checksum frame: a
// result file corrupted on disk fails its CRC, is renamed to .bad with
// the bytes preserved, and reports a miss — never a wrong document.
func TestDiskResultCacheQuarantinesCorruptFile(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskResultCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("key-a", []byte(`{"results":[1,2,3]}`))
	files, _ := filepath.Glob(filepath.Join(dir, "*"+diskResultExt))
	if len(files) != 1 {
		t.Fatalf("expected one cache file, got %v", files)
	}
	// Flip one payload byte in place: the frame's CRC must catch it.
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := c.Get("key-a"); ok {
		t.Fatal("corrupt document served as a hit")
	}
	st := c.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d; want 1", st.Quarantined)
	}
	if st.Degraded || st.ReadErrors != 0 {
		t.Fatalf("Stats = %+v; corruption is not an IO failure", st)
	}
	bad, err := os.ReadFile(files[0] + quarantineExt)
	if err != nil {
		t.Fatalf("quarantine file: %v", err)
	}
	if !bytes.Equal(bad, raw) {
		t.Fatal("quarantine file does not preserve the corrupt bytes")
	}
	// The key is rebuildable after quarantine.
	c.Put("key-a", []byte(`{"results":"rebuilt"}`))
	if got, ok := c.Get("key-a"); !ok || string(got) != `{"results":"rebuilt"}` {
		t.Fatalf("Get after rebuild = %q, %v", got, ok)
	}
}

// TestDiskResultCacheReadFaultFallsBackWithoutIndexLoss mirrors the trace
// cache's transient-read pin: every attempt is charged, the Get misses,
// but the index entry survives and serves once the fault clears.
func TestDiskResultCacheReadFaultFallsBackWithoutIndexLoss(t *testing.T) {
	defer faultinject.DisarmAll()
	c, err := NewDiskResultCache(t.TempDir(), 1<<20, WithDegradeAfter(100))
	if err != nil {
		t.Fatal(err)
	}
	doc := []byte(`{"results":"durable"}`)
	c.Put("key-a", doc)

	faultinject.Arm("resultcache.disk.read", faultinject.Fault{Kind: faultinject.KindError})
	if _, ok := c.Get("key-a"); ok {
		t.Fatal("Get served a hit through an injected read fault")
	}
	st := c.Stats()
	if st.ReadErrors != diskOpAttempts || st.Entries != 1 || st.Degraded {
		t.Fatalf("Stats = %+v; want %d read errors, index kept, not degraded", st, diskOpAttempts)
	}
	faultinject.DisarmAll()
	if got, ok := c.Get("key-a"); !ok || !bytes.Equal(got, doc) {
		t.Fatalf("Get after disarm = %q, %v", got, ok)
	}
}
