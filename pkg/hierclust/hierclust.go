// Package hierclust is the public, composable API of the hierarchical-
// clustering fault-tolerance study (Bautista-Gomez et al., CLUSTER 2012):
// clustering strategies for coupling fast erasure-coded checkpointing with
// failure containment, evaluated on the paper's four-dimensional
// optimization space — message-logging overhead, recovery cost, encoding
// time, and reliability.
//
// The package exposes three composable layers:
//
//   - Strategy: a clustering strategy behind a named registry. The paper's
//     four strategies (naive, size-guided, distributed, hierarchical) are
//     built in; third-party strategies register with RegisterStrategy and
//     then participate in scenarios like any built-in.
//
//   - Scenario: a declarative description of one evaluation — machine
//     model, placement policy, trace source (traced application, synthetic
//     stencil, or serialized trace file), strategy set, failure mix, and
//     baseline — with a stable JSON encoding, so experiments are data, not
//     code. EncodeScenario/DecodeScenario round-trip byte-identically and
//     reject unknown fields.
//
//   - Pipeline: the runner that drives a Scenario through the sparse,
//     parallel trace→cluster→evaluate engine, with functional options and
//     context cancellation. Results are deterministic at any worker count.
//
// The cmd/hcserve binary wraps a Pipeline in an HTTP service
// (POST /v1/evaluate and /v1/evaluate-batch) with a scenario-result LRU
// and an optional trace-level cache beneath it (TraceCache, keyed by
// Scenario.TraceKey); cmd/hcrun drives the paper's table and figure
// reproductions through the same package.
//
// Lower-level building blocks — machines and placements, communication
// matrices, the multi-level checkpoint store, and the hybrid
// rollback-recovery protocol — are re-exported here so applications never
// import this repository's internal packages.
//
// # Pinned invariants
//
// Three properties are contractual; tests across the repository assert
// them and downstream code may rely on them:
//
//   - Bit-identity at any worker count. Pipeline.Run produces the same
//     Result — byte-identical JSON — whether it runs with 1 worker or
//     GOMAXPROCS. Parallelism changes wall-clock time, never numbers.
//     This is what makes the result and trace caches sound: a cached
//     value is indistinguishable from a recomputation.
//
//   - Frozen-CSR immutability. Communication matrices handed to the
//     pipeline (trace.CSR, and trace.Matrix after freeze) are never
//     mutated downstream, so one trace may back any number of concurrent
//     evaluations — the property the trace cache and the singleflight
//     build dedup depend on.
//
//   - Scenario schema versioning. ScenarioVersion is the schema this
//     package writes; DecodeScenario accepts documents up to that version
//     and rejects newer ones with SchemaVersionError, and unknown fields
//     are always an error. Old documents keep decoding forever: fields
//     are only ever added, with zero values meaning "the old behavior".
package hierclust
