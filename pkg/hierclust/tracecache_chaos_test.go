package hierclust

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hierclust/internal/faultinject"
	"hierclust/internal/trace"
)

// sameTraceBytes reports whether two traces serialize to identical bytes —
// the bit-identical contract degraded mode must keep.
func sameTraceBytes(t *testing.T, a, b Comm) bool {
	t.Helper()
	var ba, bb bytes.Buffer
	if _, err := a.(*trace.CSR).WriteTo(&ba); err != nil {
		t.Fatal(err)
	}
	if _, err := b.(*trace.CSR).WriteTo(&bb); err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(ba.Bytes(), bb.Bytes())
}

func listDir(t *testing.T, dir, pattern string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestDiskTraceCacheDegradesOnWriteFaults drives the full write-failure
// path: a disk whose every write errors must charge each retried attempt,
// flip the cache to memory-only degraded mode, keep the trace servable
// bit-identically from the memory fallback, and leave no temp or cache
// files behind.
func TestDiskTraceCacheDegradesOnWriteFaults(t *testing.T) {
	defer faultinject.DisarmAll()
	dir := t.TempDir()
	c, err := NewDiskTraceCache(dir, 1<<20, WithDegradedProbe(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := trace.Synthetic(64, SyntheticOptions{Iterations: 7})

	faultinject.Arm("tracecache.disk.write", faultinject.Fault{Kind: faultinject.KindError})
	c.Put("a", orig)

	st := c.Stats()
	if st.WriteErrors != diskOpAttempts {
		t.Fatalf("WriteErrors = %d, want %d (every attempt charged)", st.WriteErrors, diskOpAttempts)
	}
	if !st.Degraded {
		t.Fatal("cache not degraded after a fully retried-out write")
	}
	if st.MemEntries != 1 {
		t.Fatalf("MemEntries = %d, want 1 (failed Put keeps the trace)", st.MemEntries)
	}
	if files := listDir(t, dir, "*"); len(files) != 0 {
		t.Fatalf("files left behind by failed writes: %v", files)
	}

	got, ok := c.Get("a")
	if !ok {
		t.Fatal("degraded cache lost the trace")
	}
	if !sameTraceBytes(t, orig, got) {
		t.Fatal("degraded-mode trace is not bit-identical to the original")
	}

	// The probe interval has not elapsed: even with the disk healthy again,
	// Puts stay memory-only rather than hammering it.
	faultinject.DisarmAll()
	other, _ := trace.Synthetic(32, SyntheticOptions{})
	c.Put("b", other)
	if files := listDir(t, dir, "*"); len(files) != 0 {
		t.Fatalf("degraded cache wrote to disk before its probe window: %v", files)
	}
	if !c.Stats().Degraded {
		t.Fatal("cache left degraded mode without a successful probe")
	}
}

// TestDiskTraceCacheRecoversViaProbe pins the recovery half: once the
// probe interval elapses and the disk works again, a single Put probes
// the disk, succeeds, and clears degraded mode.
func TestDiskTraceCacheRecoversViaProbe(t *testing.T) {
	defer faultinject.DisarmAll()
	dir := t.TempDir()
	c, err := NewDiskTraceCache(dir, 1<<20, WithDegradedProbe(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	one, _ := trace.Synthetic(64, SyntheticOptions{})

	faultinject.Arm("tracecache.disk.write", faultinject.Fault{Kind: faultinject.KindError})
	c.Put("a", one)
	if !c.Stats().Degraded {
		t.Fatal("cache not degraded")
	}

	faultinject.DisarmAll()
	time.Sleep(10 * time.Millisecond) // let the probe window open
	c.Put("b", one)

	st := c.Stats()
	if st.Degraded {
		t.Fatal("successful probe write did not clear degraded mode")
	}
	if st.Entries != 1 {
		t.Fatalf("Entries = %d after recovery probe, want 1", st.Entries)
	}
	if files := listDir(t, dir, "*"+diskTraceExt); len(files) != 1 {
		t.Fatalf("probe write left %d cache files, want 1", len(files))
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("recovered cache lost the probe-written trace")
	}
}

// TestDiskTraceCacheRenameFailureCleansTemp pins the Put bugfix: a rename
// failure after a clean temp-file write is a recorded fault (not a silent
// no-op), the temp file is removed, and the trace survives in the memory
// fallback.
func TestDiskTraceCacheRenameFailureCleansTemp(t *testing.T) {
	defer faultinject.DisarmAll()
	dir := t.TempDir()
	c, err := NewDiskTraceCache(dir, 1<<20, WithDegradedProbe(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := trace.Synthetic(64, SyntheticOptions{})

	faultinject.Arm("tracecache.disk.rename", faultinject.Fault{Kind: faultinject.KindError})
	c.Put("a", orig)

	st := c.Stats()
	if st.WriteErrors != diskOpAttempts {
		t.Fatalf("WriteErrors = %d, want %d (rename failures recorded)", st.WriteErrors, diskOpAttempts)
	}
	if st.Entries != 0 {
		t.Fatalf("Entries = %d after failed renames, want 0", st.Entries)
	}
	if tmps := listDir(t, dir, "put-*"); len(tmps) != 0 {
		t.Fatalf("temp files leaked on the rename-failure path: %v", tmps)
	}
	got, ok := c.Get("a")
	if !ok || !sameTraceBytes(t, orig, got) {
		t.Fatal("trace lost or altered after rename failures")
	}
}

// TestDiskTraceCacheReadFaultKeepsIndex drives transient read failures:
// every attempt is charged, the Get degrades to a miss, but the index
// entry survives (the bytes on disk are fine — the IO was not) so the
// entry serves again once the fault clears.
func TestDiskTraceCacheReadFaultKeepsIndex(t *testing.T) {
	defer faultinject.DisarmAll()
	dir := t.TempDir()
	// High degrade threshold: this test isolates the retry/miss behavior
	// from degraded mode.
	c, err := NewDiskTraceCache(dir, 1<<20, WithDegradeAfter(100))
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := trace.Synthetic(64, SyntheticOptions{Iterations: 3})
	c.Put("a", orig)

	faultinject.Arm("tracecache.disk.read", faultinject.Fault{Kind: faultinject.KindError})
	if _, ok := c.Get("a"); ok {
		t.Fatal("Get succeeded with every read attempt failing")
	}
	st := c.Stats()
	if st.ReadErrors != diskOpAttempts {
		t.Fatalf("ReadErrors = %d, want %d", st.ReadErrors, diskOpAttempts)
	}
	if st.Entries != 1 {
		t.Fatalf("transient read failure dropped the index entry: %+v", st)
	}
	if st.Degraded {
		t.Fatal("cache degraded below its threshold")
	}

	faultinject.DisarmAll()
	got, ok := c.Get("a")
	if !ok || !sameTraceBytes(t, orig, got) {
		t.Fatal("entry did not serve again after the read fault cleared")
	}
}

// TestDiskTraceCacheQuarantinesCorruptFile pins the corruption path: a
// file that fails to decode is renamed to .bad with its bytes preserved
// for post-mortem, counted, reported as a miss, and — being a content
// problem, not a disk-health problem — charged to neither the error
// counters nor the degradation trigger.
func TestDiskTraceCacheQuarantinesCorruptFile(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskTraceCache(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	one, _ := trace.Synthetic(64, SyntheticOptions{})
	c.Put("a", one)

	files := listDir(t, dir, "*"+diskTraceExt)
	if len(files) != 1 {
		t.Fatalf("%d cache files, want 1", len(files))
	}
	garbage := []byte("HCTRgarbage")
	if err := os.WriteFile(files[0], garbage, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := c.Get("a"); ok {
		t.Fatal("corrupt file reported as hit")
	}
	st := c.Stats()
	if st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
	if st.ReadErrors != 0 {
		t.Fatalf("corruption charged %d read errors; decode failures are not disk faults", st.ReadErrors)
	}
	if st.Degraded {
		t.Fatal("corruption flipped degraded mode")
	}
	bad := listDir(t, dir, "*"+diskTraceExt+quarantineExt)
	if len(bad) != 1 {
		t.Fatalf("%d quarantine files, want 1", len(bad))
	}
	kept, err := os.ReadFile(bad[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(kept, garbage) {
		t.Fatal("quarantine did not preserve the corrupt bytes")
	}
	if len(listDir(t, dir, "*"+diskTraceExt)) != 0 {
		t.Fatal("corrupt file left in place under its cache name")
	}

	// The stem is rebuildable: a fresh Put stores and serves again.
	c.Put("a", one)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("stem not rebuildable after quarantine")
	}
}
