// Package hierclust's root benchmark suite regenerates every table and
// figure of the paper's evaluation through the harness (one benchmark per
// artifact, quick scale so -bench terminates promptly) and benchmarks the
// performance-critical substrates: Reed–Solomon encoding at the paper's
// group sizes (the linear-in-k law behind Fig. 3b and Table II's encode
// column), the graph partitioner, the reliability model, the message-
// passing runtime, and the hybrid protocol with failure recovery.
//
// Run with: go test -bench=. -benchmem
package hierclust

import (
	"context"
	"fmt"
	"testing"

	"hierclust/internal/checkpoint"
	"hierclust/internal/core"
	"hierclust/internal/erasure"
	"hierclust/internal/graph"
	"hierclust/internal/harness"
	"hierclust/internal/hybrid"
	"hierclust/internal/reliability"
	"hierclust/internal/simmpi"
	"hierclust/internal/topology"
	"hierclust/internal/trace"
	"hierclust/internal/tsunami"
	api "hierclust/pkg/hierclust"
)

// benchExperiment runs one harness experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	exp, err := harness.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := harness.Config{Quick: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := exp.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkTable1(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkFig3a(b *testing.B)    { benchExperiment(b, "fig3a") }
func BenchmarkFig3b(b *testing.B)    { benchExperiment(b, "fig3b") }
func BenchmarkFig4a(b *testing.B)    { benchExperiment(b, "fig4a") }
func BenchmarkFig4b(b *testing.B)    { benchExperiment(b, "fig4b") }
func BenchmarkFig4c(b *testing.B)    { benchExperiment(b, "fig4c") }
func BenchmarkFig5a(b *testing.B)    { benchExperiment(b, "fig5a") }
func BenchmarkFig5b(b *testing.B)    { benchExperiment(b, "fig5b") }
func BenchmarkFig5c(b *testing.B)    { benchExperiment(b, "fig5c") }
func BenchmarkTable2(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkProtocol(b *testing.B) { benchExperiment(b, "protocol") }
func BenchmarkAblation(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkRSEncode measures Reed–Solomon group encoding at the paper's
// group sizes. Throughput should fall roughly linearly with k — the law the
// paper's encode-time column (51 s/102 s/204 s per GB at k=8/16/32) obeys.
func BenchmarkRSEncode(b *testing.B) {
	const shard = 1 << 20
	for _, k := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			enc, err := erasure.NewGroupEncoder(k, k, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			data := make([][]byte, k)
			for i := range data {
				data[i] = make([]byte, shard)
				for j := range data[i] {
					data[i][j] = byte(i + j)
				}
			}
			b.SetBytes(int64(k * shard))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := enc.Encode(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRSEncodeStream measures the streaming encode path: identical
// coding work to BenchmarkRSEncode but with parity buffers reused across
// calls via GroupEncoder.NewStream, the zero-allocation hot path the
// checkpoint manager runs.
func BenchmarkRSEncodeStream(b *testing.B) {
	const shard = 1 << 20
	for _, k := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			enc, err := erasure.NewGroupEncoder(k, k, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			stream := enc.NewStream()
			data := make([][]byte, k)
			for i := range data {
				data[i] = make([]byte, shard)
				for j := range data[i] {
					data[i][j] = byte(i + j)
				}
			}
			b.SetBytes(int64(k * shard))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := stream.Encode(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkXOREncode measures the single-parity XOR codec (the L3-xor
// cheap alternative), now word-wide.
func BenchmarkXOREncode(b *testing.B) {
	const shard = 1 << 20
	for _, k := range []int{8, 32} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			x, err := erasure.NewXOR(k)
			if err != nil {
				b.Fatal(err)
			}
			data := make([][]byte, k)
			for i := range data {
				data[i] = make([]byte, shard)
				for j := range data[i] {
					data[i][j] = byte(i ^ j)
				}
			}
			parity := make([]byte, shard)
			b.SetBytes(int64(k * shard))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := x.Encode(data, parity); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHarnessRun measures the pooled experiment runner end to end on a
// small deterministic subset (worker counts 1 and 4 share the rig cache).
func BenchmarkHarnessRun(b *testing.B) {
	var exps []harness.Experiment
	for _, id := range []string{"table1", "fig4a"} {
		e, err := harness.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		exps = append(exps, e)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, r := range harness.Run(harness.Config{Quick: true}, exps, workers) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkScaling64k measures the full sparse evaluation pipeline at
// 65,536 ranks on 4096 nodes: synthetic 2-D stencil trace generation (CSR),
// hierarchical clustering (node aggregation, partitioning, L2 groups), and
// the four-dimension evaluation including the reliability model. The
// dense-matrix path would need ~34 GB for the trace alone; allocs/op and
// B/op document the sub-O(n²) footprint of the CSR pipeline.
func BenchmarkScaling64k(b *testing.B) {
	const ranks, ppn = 65536, 16
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, placement, err := harness.SyntheticRig(ranks, ppn)
		if err != nil {
			b.Fatal(err)
		}
		hier, err := core.Hierarchical(m, placement, core.HierOptions{})
		if err != nil {
			b.Fatal(err)
		}
		e, err := core.Evaluate(hier, m, placement, reliability.DefaultMix())
		if err != nil {
			b.Fatal(err)
		}
		if ok, viol := e.Meets(core.DefaultBaseline()); !ok {
			b.Fatalf("64k-rank evaluation outside baseline: %v", viol)
		}
	}
}

// BenchmarkScaling256k measures the full sparse evaluation pipeline at
// 262,144 ranks on 16,384 nodes — four times the node count of the 64k
// benchmark, the regime the multilevel partitioner and the flat-span
// placement exist for. Synthetic 2-D stencil trace (CSR), hierarchical
// clustering through the multilevel node partitioner, and the complete
// four-dimension evaluation.
func BenchmarkScaling256k(b *testing.B) {
	const ranks, ppn = 262144, 16
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, placement, err := harness.SyntheticRig(ranks, ppn)
		if err != nil {
			b.Fatal(err)
		}
		hier, err := core.Hierarchical(m, placement, core.HierOptions{Multilevel: true})
		if err != nil {
			b.Fatal(err)
		}
		e, err := core.Evaluate(hier, m, placement, reliability.DefaultMix())
		if err != nil {
			b.Fatal(err)
		}
		if ok, viol := e.Meets(core.DefaultBaseline()); !ok {
			b.Fatalf("256k-rank evaluation outside baseline: %v", viol)
		}
	}
}

// BenchmarkRSReconstruct measures decode after losing half the group.
func BenchmarkRSReconstruct(b *testing.B) {
	const shard = 1 << 20
	for _, k := range []int{4, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			rs, err := erasure.NewRS(k, k)
			if err != nil {
				b.Fatal(err)
			}
			data := make([][]byte, k)
			parity := make([][]byte, k)
			for i := 0; i < k; i++ {
				data[i] = make([]byte, shard)
				parity[i] = make([]byte, shard)
				for j := range data[i] {
					data[i][j] = byte(i * j)
				}
			}
			if err := rs.Encode(data, parity); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(k * shard))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				shards := make([][]byte, 2*k)
				for j := 0; j < k; j++ {
					if j < k/2 {
						shards[j] = nil // half the members lost
					} else {
						shards[j] = data[j]
					}
					shards[k+j] = parity[j]
				}
				if err := rs.Reconstruct(shards); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPartition measures the L1 graph partitioner on node graphs of
// increasing size.
func BenchmarkPartition(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			g := graph.New(n)
			for i := 0; i+1 < n; i++ {
				_ = g.AddEdge(i, i+1, 1000)
			}
			for i := 0; i+16 < n; i += 4 {
				_ = g.AddEdge(i, i+16, 10)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := graph.Partition(g, graph.PartitionOptions{MinSize: 4, TargetSize: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// stencil131k builds the 131,072-node 2-D stencil node graph shared by the
// Partition100k / MultilevelSerial / Multilevel100kWorkers benchmarks — the
// node-graph shape of a 2M-rank machine at 16 ranks per node. One builder,
// so the serial-gap numbers always measure the same graph the standing
// partition benchmark does.
func stencil131k() *graph.Graph {
	const n, width = 131072, 256
	g := graph.New(n)
	for i := 0; i < n; i++ {
		if i+1 < n && (i+1)%width != 0 {
			_ = g.AddEdge(i, i+1, 1000)
		}
		if i+width < n {
			_ = g.AddEdge(i, i+width, 800)
		}
	}
	return g
}

// BenchmarkPartition100k measures the multilevel partitioner on a
// 131,072-node 2-D stencil graph — the node-graph shape of a 2M-rank
// machine at 16 ranks per node — against the single-level greedy growth on
// the same graph. MinSize/TargetSize 4 is the paper's L1 configuration.
func BenchmarkPartition100k(b *testing.B) {
	g := stencil131k()
	for _, tc := range []struct {
		name string
		opts graph.PartitionOptions
	}{
		{"multilevel", graph.PartitionOptions{MinSize: 4, TargetSize: 4, Multilevel: true}},
		{"single-level", graph.PartitionOptions{MinSize: 4, TargetSize: 4}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := graph.Partition(g, tc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMultilevelSerial pins the multilevel partitioner's single-core
// wall clock against the single-level growth on the same 131,072-node
// stencil (Workers=1 forces every phase — matching, contraction, refinement
// scans — onto one core regardless of GOMAXPROCS). This is the "serial gap"
// benchmark: PR 4 shipped multilevel at ~3.5× single-level on one core; the
// fused coarsening, level arena, flat frontiers, and sweep-skip stamps
// exist to close that gap without changing an output bit.
func BenchmarkMultilevelSerial(b *testing.B) {
	g := stencil131k()
	for _, tc := range []struct {
		name string
		opts graph.PartitionOptions
	}{
		{"multilevel", graph.PartitionOptions{MinSize: 4, TargetSize: 4, Multilevel: true, Workers: 1}},
		{"single-level", graph.PartitionOptions{MinSize: 4, TargetSize: 4, Workers: 1}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := graph.Partition(g, tc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMultilevel100kWorkers measures the multilevel partitioner's
// worker scaling on the 131,072-node stencil. The assignment is bit-identical
// at every worker count (pinned by the partition golden test); only the wall
// clock may differ. On a single-core host the >1 rows only measure the
// coordination overhead.
func BenchmarkMultilevel100kWorkers(b *testing.B) {
	g := stencil131k()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := graph.PartitionOptions{MinSize: 4, TargetSize: 4, Multilevel: true, Workers: workers}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := graph.Partition(g, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// stencil1M builds a 1,048,576-node 2-D stencil node graph — the node graph
// of a 4M-rank machine at 4 ranks per node, the scale the paper's title
// promises. Same shape and edge weights as stencil131k, eight times the
// vertex count.
func stencil1M() *graph.Graph {
	const n, width = 1 << 20, 1024
	g := graph.New(n)
	for i := 0; i < n; i++ {
		if i+1 < n && (i+1)%width != 0 {
			_ = g.AddEdge(i, i+1, 1000)
		}
		if i+width < n {
			_ = g.AddEdge(i, i+width, 800)
		}
	}
	return g
}

// BenchmarkPartition1M measures the multilevel partitioner on the
// million-node stencil — the scale proof for the cross-level gain-cache
// projection and the parallel region commit. Target envelope: under one
// second per partition. Skipped under -short (and therefore absent from
// `make bench-smoke`-adjacent quick runs that pass it); the benchjson gate
// tolerates one-sided benchmarks, so short baselines and full runs compare
// cleanly.
func BenchmarkPartition1M(b *testing.B) {
	if testing.Short() {
		b.Skip("million-node graph build: skipped under -short")
	}
	g := stencil1M()
	opts := graph.PartitionOptions{MinSize: 4, TargetSize: 4, Multilevel: true}
	// One warm partition outside the timer: freezing the million-row CSR
	// (a per-row stable sort) is one-time graph state, not partitioner work.
	if _, err := graph.Partition(g, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.Partition(g, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaling1M measures the full sparse evaluation pipeline at
// 4,194,304 ranks on 1,048,576 nodes — the million-node regime. Synthetic
// 2-D stencil trace (CSR), hierarchical clustering through the multilevel
// node partitioner, and the complete four-dimension evaluation. Skipped
// under -short.
func BenchmarkScaling1M(b *testing.B) {
	if testing.Short() {
		b.Skip("4M-rank rig: skipped under -short")
	}
	const ranks, ppn = 4 << 20, 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, placement, err := harness.SyntheticRig(ranks, ppn)
		if err != nil {
			b.Fatal(err)
		}
		hier, err := core.Hierarchical(m, placement, core.HierOptions{Multilevel: true})
		if err != nil {
			b.Fatal(err)
		}
		e, err := core.Evaluate(hier, m, placement, reliability.DefaultMix())
		if err != nil {
			b.Fatal(err)
		}
		if ok, viol := e.Meets(core.DefaultBaseline()); !ok {
			b.Fatalf("4M-rank evaluation outside baseline: %v", viol)
		}
	}
}

// BenchmarkCatastropheModel measures the reliability model on the paper's
// hierarchical layout (64 nodes, 256 groups of 4).
func BenchmarkCatastropheModel(b *testing.B) {
	mach := &topology.Machine{Name: "b", Nodes: 64}
	p, err := topology.Block(mach, 1024, 16)
	if err != nil {
		b.Fatal(err)
	}
	var groups []reliability.Group
	for l1 := 0; l1 < 16; l1++ {
		for i := 0; i < 16; i++ {
			var mem []topology.Rank
			for nd := l1 * 4; nd < l1*4+4; nd++ {
				mem = append(mem, topology.Rank(nd*16+i))
			}
			groups = append(groups, reliability.GroupFromRanks(p, mem))
		}
	}
	mdl := &reliability.Model{Nodes: 64, Mix: reliability.DefaultMix()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mdl.CatastropheProb(groups); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimMPIAllgather measures the runtime's recursive-doubling
// allgather at growing world sizes.
func BenchmarkSimMPIAllgather(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("ranks=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				err := simmpi.Run(n, simmpi.Options{}, func(p *simmpi.Proc) error {
					_, err := p.Comm().Allgather(make([]byte, 64))
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimMPIStencil measures a full neighbor-exchange sweep.
func BenchmarkSimMPIStencil(b *testing.B) {
	const n = 256
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		err := simmpi.Run(n, simmpi.Options{}, func(p *simmpi.Proc) error {
			c := p.Comm()
			payload := make([]byte, 1024)
			if c.Rank() > 0 {
				if err := c.Send(c.Rank()-1, 1, payload); err != nil {
					return err
				}
			}
			if c.Rank() < n-1 {
				if err := c.Send(c.Rank()+1, 1, payload); err != nil {
					return err
				}
				if _, err := c.Recv(c.Rank()+1, 1); err != nil {
					return err
				}
			}
			if c.Rank() > 0 {
				if _, err := c.Recv(c.Rank()-1, 1); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTsunamiStep measures the solver kernel.
func BenchmarkTsunamiStep(b *testing.B) {
	p := tsunami.DefaultParams(1)
	p.NX, p.NY = 256, 256
	s, err := tsunami.NewSolver(p, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(p.NX * p.NY * 3 * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkHybridRecovery measures a full contained recovery: checkpoint,
// node failure, RS decode, replay, re-execution.
func BenchmarkHybridRecovery(b *testing.B) {
	const ranks, ppn = 64, 8
	mach := &topology.Machine{
		Name: "b", Nodes: ranks / ppn,
		SSDWriteBps: 1e9, SSDReadBps: 1e9, PFSWriteBps: 1e9, PFSReadBps: 1e9, NetBps: 1e9,
	}
	placement, err := topology.Block(mach, ranks, ppn)
	if err != nil {
		b.Fatal(err)
	}
	m := trace.NewMatrix(ranks)
	for r := 0; r+1 < ranks; r++ {
		_ = m.Add(r, r+1, 1000)
		_ = m.Add(r+1, r, 1000)
	}
	cl, err := core.Hierarchical(m, placement, core.HierOptions{})
	if err != nil {
		b.Fatal(err)
	}
	params := tsunami.DefaultParams(ranks)
	params.NX, params.NY = 64, 2*ranks
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app, err := tsunami.NewFTApp(params)
		if err != nil {
			b.Fatal(err)
		}
		runner, err := hybrid.NewRunner(hybrid.Config{
			Placement:       placement,
			Clusters:        cl.L1,
			Groups:          cl.Groups,
			CheckpointEvery: 5,
			Level:           checkpoint.L3Encoded,
		}, app)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := runner.Run(15, map[int][]topology.NodeID{8: {2}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateSharedTrace measures the pipeline's trace-level cache:
// two scenarios that share one tsunami trace key but differ in strategy.
// "cold" rebuilds the trace — running the traced application — on every
// evaluation; "trace-cached" pre-warms a MemoryTraceCache with the first
// scenario, so every evaluation of the second skips the application run
// (the per-iteration cache stats assert it). The delta between the two is
// exactly the cost hcserve's trace cache removes for scenarios sharing
// a trace.
func BenchmarkEvaluateSharedTrace(b *testing.B) {
	scenario := func(name, kind string) *api.Scenario {
		return &api.Scenario{
			Name:       name,
			Machine:    api.MachineSpec{Nodes: 16},
			Placement:  api.PlacementSpec{Policy: "block", Ranks: 64, ProcsPerNode: 4},
			Trace:      api.TraceSpec{Source: "tsunami", Iterations: 5},
			Strategies: []api.StrategySpec{{Kind: kind}},
		}
	}

	b.Run("cold", func(b *testing.B) {
		pl := api.NewPipeline()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pl.Run(context.Background(), scenario("shared-b", "size-guided")); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("trace-cached", func(b *testing.B) {
		tc := api.NewMemoryTraceCache(4)
		pl := api.NewPipeline(api.WithTraceCache(tc))
		if _, err := pl.Run(context.Background(), scenario("shared-a", "hierarchical")); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pl.Run(context.Background(), scenario("shared-b", "size-guided")); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if stats := tc.Stats(); stats.Hits != int64(b.N) || stats.Misses != 1 {
			b.Fatalf("trace cache stats = %+v, want %d hits / 1 miss (every timed run must skip the app)", stats, b.N)
		}
	})
}
