module hierclust

go 1.24
