// Command clusterview builds and compares clustering strategies for a
// traced communication matrix, printing the four-dimension evaluation and
// an ASCII heatmap of the traffic. It is a client of the public
// pkg/hierclust API.
//
// Usage:
//
//	clusterview -ranks 256 -ppn 8          # trace the tsunami app and compare
//	clusterview -ranks 256 -heatmap        # also draw the traffic heatmap
package main

import (
	"flag"
	"fmt"
	"os"

	"hierclust/pkg/hierclust"
)

func main() {
	var (
		ranks   = flag.Int("ranks", 256, "application ranks")
		ppn     = flag.Int("ppn", 8, "ranks per node")
		iters   = flag.Int("iters", 20, "traced iterations")
		naive   = flag.Int("naive", 32, "naive cluster size")
		sg      = flag.Int("size-guided", 8, "size-guided cluster size")
		dist    = flag.Int("distributed", 16, "distributed cluster size")
		heatmap = flag.Bool("heatmap", false, "print the traffic heatmap")
	)
	flag.Parse()

	if *ranks%*ppn != 0 {
		fail(fmt.Errorf("ranks %d not divisible by ppn %d", *ranks, *ppn))
	}
	nodes := *ranks / *ppn
	mach, err := hierclust.Tsubame2().Subset(nodes)
	if err != nil {
		fail(err)
	}
	placement, err := hierclust.Block(mach, *ranks, *ppn)
	if err != nil {
		fail(err)
	}

	params := hierclust.TsunamiTraceParams(*ranks)
	rec := hierclust.NewTraceRecorder(*ranks)
	if _, err := hierclust.RunTracedTsunami(hierclust.TracedTsunamiOptions{
		Params: params, Iterations: *iters, Tracer: rec,
	}); err != nil {
		fail(err)
	}
	m := rec.Matrix()
	fmt.Printf("traced %d ranks on %d nodes: %d messages, %d bytes\n",
		*ranks, nodes, m.TotalMsgs(), m.TotalBytes())
	if *heatmap {
		fmt.Println(m.ASCIIHeatmap(64))
	}

	var evals []*hierclust.Evaluation
	mix := hierclust.DefaultMix()
	for _, build := range []func() (*hierclust.Clustering, error){
		func() (*hierclust.Clustering, error) { return hierclust.Naive(*ranks, *naive) },
		func() (*hierclust.Clustering, error) { return hierclust.SizeGuided(*ranks, *sg) },
		func() (*hierclust.Clustering, error) { return hierclust.Distributed(*ranks, *dist) },
		func() (*hierclust.Clustering, error) {
			return hierclust.Hierarchical(m, placement, hierclust.HierOptions{})
		},
	} {
		c, err := build()
		if err != nil {
			fail(err)
		}
		e, err := hierclust.Evaluate(c, m, placement, mix)
		if err != nil {
			fail(err)
		}
		evals = append(evals, e)
	}
	fmt.Print(hierclust.CompareTable(evals, hierclust.DefaultBaseline()))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "clusterview:", err)
	os.Exit(1)
}
