// Command clusterview builds and compares clustering strategies for a
// traced communication matrix, printing the four-dimension evaluation and
// an ASCII heatmap of the traffic.
//
// Usage:
//
//	clusterview -ranks 256 -ppn 8          # trace the tsunami app and compare
//	clusterview -ranks 256 -heatmap        # also draw the traffic heatmap
package main

import (
	"flag"
	"fmt"
	"os"

	"hierclust/internal/core"
	"hierclust/internal/reliability"
	"hierclust/internal/topology"
	"hierclust/internal/trace"
	"hierclust/internal/tsunami"
)

func main() {
	var (
		ranks   = flag.Int("ranks", 256, "application ranks")
		ppn     = flag.Int("ppn", 8, "ranks per node")
		iters   = flag.Int("iters", 20, "traced iterations")
		naive   = flag.Int("naive", 32, "naive cluster size")
		sg      = flag.Int("size-guided", 8, "size-guided cluster size")
		dist    = flag.Int("distributed", 16, "distributed cluster size")
		heatmap = flag.Bool("heatmap", false, "print the traffic heatmap")
	)
	flag.Parse()

	if *ranks%*ppn != 0 {
		fail(fmt.Errorf("ranks %d not divisible by ppn %d", *ranks, *ppn))
	}
	nodes := *ranks / *ppn
	mach, err := topology.Tsubame2().Subset(nodes)
	if err != nil {
		fail(err)
	}
	placement, err := topology.Block(mach, *ranks, *ppn)
	if err != nil {
		fail(err)
	}

	params := tsunami.DefaultParams(*ranks)
	params.NX, params.NY = 64, 2**ranks
	rec := trace.NewRecorder(*ranks)
	if _, err := tsunami.RunTraced(tsunami.TracedOptions{
		Params: params, Iterations: *iters, Tracer: rec,
	}); err != nil {
		fail(err)
	}
	m := rec.Matrix()
	fmt.Printf("traced %d ranks on %d nodes: %d messages, %d bytes\n",
		*ranks, nodes, m.TotalMsgs(), m.TotalBytes())
	if *heatmap {
		fmt.Println(m.ASCIIHeatmap(64))
	}

	var evals []*core.Evaluation
	mix := reliability.DefaultMix()
	for _, build := range []func() (*core.Clustering, error){
		func() (*core.Clustering, error) { return core.Naive(*ranks, *naive) },
		func() (*core.Clustering, error) { return core.SizeGuided(*ranks, *sg) },
		func() (*core.Clustering, error) { return core.Distributed(*ranks, *dist) },
		func() (*core.Clustering, error) { return core.Hierarchical(m, placement, core.HierOptions{}) },
	} {
		c, err := build()
		if err != nil {
			fail(err)
		}
		e, err := core.Evaluate(c, m, placement, mix)
		if err != nil {
			fail(err)
		}
		evals = append(evals, e)
	}
	fmt.Print(core.CompareTable(evals, core.DefaultBaseline()))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "clusterview:", err)
	os.Exit(1)
}
