// Command hcserve serves clustering-scenario evaluations over HTTP: POST a
// scenario JSON document, get the four-dimension evaluation of every
// strategy in it. Hot scenarios are answered from an LRU cache.
//
// Usage:
//
//	hcserve                          # listen on :8080
//	hcserve -addr :9090 -cache 512   # custom port and cache size
//	hcserve -workers 4               # bound per-request parallelism
//
// Try it:
//
//	curl -s localhost:8080/v1/scenarios | head
//	curl -s -X POST localhost:8080/v1/evaluate \
//	     -d '{"name":"demo","machine":{"nodes":32},
//	          "placement":{"ranks":256,"procs_per_node":8},
//	          "trace":{"source":"synthetic"},
//	          "strategies":[{"kind":"hierarchical"}]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hierclust/pkg/hierclust"
	"hierclust/pkg/hierclust/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		cache   = flag.Int("cache", serve.DefaultCacheSize, "scenario-result LRU capacity (0 = default, negative disables)")
		workers = flag.Int("workers", 0, "per-request evaluation workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	handler := serve.New(serve.Options{
		Pipeline:  hierclust.NewPipeline(hierclust.WithWorkers(*workers)),
		CacheSize: *cache,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("hcserve: listening on %s", *addr)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	case <-ctx.Done():
		log.Printf("hcserve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hcserve:", err)
	os.Exit(1)
}
