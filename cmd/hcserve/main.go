// Command hcserve serves clustering-scenario evaluations over HTTP: POST a
// scenario JSON document (or an array of them), get the four-dimension
// evaluation of every strategy in it. Two cache levels absorb repeated
// work — a scenario-result LRU and a trace cache beneath it that spares
// the traced tsunami application from re-running for scenarios that share
// a trace — a concurrency limiter with a bounded wait queue sheds overload
// with 429 + Retry-After, and GET /metrics exposes the registry in
// Prometheus text format. See docs/OPERATIONS.md for the full runbook.
//
// Usage:
//
//	hcserve                            # listen on :8080
//	hcserve -addr :9090 -cache 512     # custom port and result-cache size
//	hcserve -workers 4                 # bound per-request parallelism
//	hcserve -trace-cache-dir /var/hc   # persistent disk trace cache
//	hcserve -result-cache-dir /var/hc/results -sweep-journal /var/hc/sweeps.journal
//	                                   # restart-survivable results and sweeps
//	hcserve -max-concurrent 8 -queue-depth 32 -retry-after 2s
//	hcserve -eval-timeout 30s          # server-side deadline per evaluation
//	hcserve -fault 'tracecache.disk.write=error:1.0'   # chaos drills
//	hcserve -max-sweeps 4 -max-sweep-cells 4096 -client-slot-cap 2
//
// Try it:
//
//	curl -s localhost:8080/v1/scenarios | head
//	curl -s -X POST localhost:8080/v1/evaluate \
//	     -d '{"name":"demo","machine":{"nodes":32},
//	          "placement":{"ranks":256,"procs_per_node":8},
//	          "trace":{"source":"synthetic"},
//	          "strategies":[{"kind":"hierarchical"}]}'
//	curl -s localhost:8080/metrics | grep hcserve_cache
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hierclust/internal/faultinject"
	"hierclust/pkg/hierclust"
	"hierclust/pkg/hierclust/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		cache   = flag.Int("cache", serve.DefaultCacheSize, "scenario-result LRU capacity (0 = default, negative disables)")
		workers = flag.Int("workers", 0, "per-request evaluation workers (0 = GOMAXPROCS)")

		traceCache   = flag.Int("trace-cache", 64, "in-memory trace cache capacity in traces (negative disables; ignored with -trace-cache-dir)")
		traceDir     = flag.String("trace-cache-dir", "", "directory for a persistent disk trace cache (empty = in-memory)")
		traceDiskMB  = flag.Int("trace-cache-mb", 256, "disk trace cache size bound in MiB (with -trace-cache-dir)")
		maxConc      = flag.Int("max-concurrent", serve.DefaultMaxConcurrent, "evaluations executing at once")
		queueDepth   = flag.Int("queue-depth", 0, "evaluations waiting for a slot before 429 shedding (0 = 2x max-concurrent, negative = no queue)")
		retryAfter   = flag.Duration("retry-after", time.Second, "advisory Retry-After on 429/503 responses")
		maxBatch     = flag.Int("max-batch", serve.DefaultMaxBatch, "max scenarios per /v1/evaluate-batch request")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "shutdown grace period for in-flight evaluations")
		evalTimeout  = flag.Duration("eval-timeout", 0, "server-side deadline per evaluation / batch element, measured after admission (0 = none); exceeded = 504")

		resultDir    = flag.String("result-cache-dir", "", "directory for a persistent disk result cache beneath the LRU (empty = in-memory only)")
		resultDiskMB = flag.Int("result-cache-mb", 512, "disk result cache size bound in MiB (with -result-cache-dir)")
		sweepJournal = flag.String("sweep-journal", "", "path of the crash-safe sweep journal; accepted sweeps resume across restarts (empty = none)")

		clientCap     = flag.Int("client-slot-cap", 0, "max evaluation slots one client (X-Hierclust-Client) may hold at once (0 = max-concurrent-1)")
		maxSweepCells = flag.Int("max-sweep-cells", serve.DefaultMaxSweepCells, "max cells per /v1/sweeps submission")
		maxSweeps     = flag.Int("max-sweeps", serve.DefaultMaxConcurrentSweeps, "sweep jobs executing at once")
		maxSweepJobs  = flag.Int("max-sweep-jobs", serve.DefaultMaxSweepJobs, "finished sweep jobs retained for polling before eviction")
	)
	flag.Func("fault", "arm fault injection points, e.g. 'tracecache.disk.write=error:1.0,pipeline.worker=panic:0.01' (repeatable; chaos drills only)",
		faultinject.ArmSpec)
	flag.Parse()
	if armed := faultinject.Armed(); len(armed) > 0 {
		log.Printf("hcserve: WARNING: fault injection armed (chaos drill, not for production traffic): %v", armed)
	}

	opts := []hierclust.PipelineOption{hierclust.WithWorkers(*workers)}
	var cacheStats serve.TraceCacheStatser
	switch {
	case *traceDir != "":
		dc, err := hierclust.NewDiskTraceCache(*traceDir, int64(*traceDiskMB)<<20)
		if err != nil {
			fail(err)
		}
		opts = append(opts, hierclust.WithTraceCache(dc))
		cacheStats = dc
	case *traceCache > 0:
		mc := hierclust.NewMemoryTraceCache(*traceCache)
		opts = append(opts, hierclust.WithTraceCache(mc))
		cacheStats = mc
	}

	// Assign through a typed local only when a tier exists: a nil
	// *DiskResultCache stored in the interface field would not compare
	// equal to nil inside the server.
	var resultTier serve.ResultCacheTier
	if *resultDir != "" {
		rc, err := hierclust.NewDiskResultCache(*resultDir, int64(*resultDiskMB)<<20)
		if err != nil {
			fail(err)
		}
		resultTier = rc
	}

	handler := serve.New(serve.Options{
		Pipeline:          hierclust.NewPipeline(opts...),
		CacheSize:         *cache,
		MaxConcurrent:     *maxConc,
		QueueDepth:        *queueDepth,
		RetryAfter:        *retryAfter,
		MaxBatchScenarios: *maxBatch,
		EvalTimeout:       *evalTimeout,
		TraceCache:        cacheStats,
		ResultCache:       resultTier,

		ClientSlotCap:       *clientCap,
		MaxSweepCells:       *maxSweepCells,
		MaxConcurrentSweeps: *maxSweeps,
		MaxSweepJobs:        *maxSweepJobs,
	})
	if *sweepJournal != "" {
		resumed, err := handler.OpenSweepJournal(*sweepJournal)
		if err != nil {
			fail(err)
		}
		if resumed > 0 {
			log.Printf("hcserve: resuming %d journaled sweep job(s)", resumed)
		}
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("hcserve: listening on %s", *addr)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	case <-ctx.Done():
		// Graceful drain: stop admitting new evaluations (queued waiters
		// get 503 immediately), then let the already-running ones finish
		// within the grace period.
		log.Printf("hcserve: draining (grace %s)", *drainTimeout)
		handler.Drain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fail(err)
		}
		log.Printf("hcserve: drained")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hcserve:", err)
	os.Exit(1)
}
