package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeSnap(t *testing.T, dir, name string, benches []Benchmark) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(Snapshot{GoVersion: "test", Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// Adding a benchmark to the suite must not break the compare gate: names
// present only in the new snapshot are reported as "new", never failures,
// even when they match the guard filter.
func TestCompareNewBenchmarkDoesNotFail(t *testing.T) {
	dir := t.TempDir()
	old := writeSnap(t, dir, "old.json", []Benchmark{
		{Name: "BenchmarkRSEncode/k=8-4", Iterations: 10, NsPerOp: 100},
	})
	new := writeSnap(t, dir, "new.json", []Benchmark{
		{Name: "BenchmarkRSEncode/k=8-4", Iterations: 10, NsPerOp: 101},
		{Name: "BenchmarkMultilevelSerial/multilevel-4", Iterations: 5, NsPerOp: 500},
	})
	if rc := compareSnapshots(old, new, 25, "RSEncode|MultilevelSerial"); rc != 0 {
		t.Fatalf("compare exited %d, want 0 (new guarded benchmark must not fail the gate)", rc)
	}
}

// A removed benchmark is reported but only fails when nothing guarded was
// compared at all.
func TestCompareRemovedBenchmark(t *testing.T) {
	dir := t.TempDir()
	old := writeSnap(t, dir, "old.json", []Benchmark{
		{Name: "BenchmarkRSEncode/k=8", Iterations: 10, NsPerOp: 100},
		{Name: "BenchmarkOld", Iterations: 10, NsPerOp: 50},
	})
	new := writeSnap(t, dir, "new.json", []Benchmark{
		{Name: "BenchmarkRSEncode/k=8", Iterations: 10, NsPerOp: 90},
	})
	if rc := compareSnapshots(old, new, 25, "RSEncode"); rc != 0 {
		t.Fatalf("compare exited %d, want 0 (removed unguarded benchmark is informational)", rc)
	}
}

// The million-node rollout shape: the baseline predates Partition1M and
// Scaling1M, the new run has them, and both sides share the standing
// benchmarks. With the production guard filter the one-sided names are
// informational in either direction — a fresh snapshot gates cleanly
// against a pre-1M baseline, and a -short run (1M benchmarks skipped)
// gates cleanly against a post-1M baseline.
func TestCompareOneSided1MBenchmarks(t *testing.T) {
	const filter = "RSEncode|Partition100k|Partition1M|Scaling256k|Scaling1M|MultilevelSerial"
	dir := t.TempDir()
	pre := writeSnap(t, dir, "pre.json", []Benchmark{
		{Name: "BenchmarkPartition100k/multilevel-4", Iterations: 20, NsPerOp: 6e7},
	})
	post := writeSnap(t, dir, "post.json", []Benchmark{
		{Name: "BenchmarkPartition100k/multilevel-4", Iterations: 20, NsPerOp: 6e7},
		{Name: "BenchmarkPartition1M-4", Iterations: 3, NsPerOp: 6e8},
		{Name: "BenchmarkScaling1M-4", Iterations: 1, NsPerOp: 1e10},
	})
	if rc := compareSnapshots(pre, post, 300, filter); rc != 0 {
		t.Fatalf("compare exited %d, want 0 (guarded 1M benchmarks new in the snapshot must not fail)", rc)
	}
	if rc := compareSnapshots(post, pre, 300, filter); rc != 0 {
		t.Fatalf("compare exited %d, want 0 (guarded 1M benchmarks skipped by -short must only warn)", rc)
	}
}

// A real regression of a benchmark present in both snapshots still fails.
func TestCompareRegressionFails(t *testing.T) {
	dir := t.TempDir()
	old := writeSnap(t, dir, "old.json", []Benchmark{
		{Name: "BenchmarkRSEncode/k=8", Iterations: 10, NsPerOp: 100},
	})
	new := writeSnap(t, dir, "new.json", []Benchmark{
		{Name: "BenchmarkRSEncode/k=8", Iterations: 10, NsPerOp: 200},
	})
	if rc := compareSnapshots(old, new, 25, "RSEncode"); rc != 1 {
		t.Fatalf("compare exited %d, want 1 (100%% regression past 25%% threshold)", rc)
	}
}

// Losing every guarded benchmark means the gate compared nothing: loud exit.
func TestCompareAllGuardedGoneFails(t *testing.T) {
	dir := t.TempDir()
	old := writeSnap(t, dir, "old.json", []Benchmark{
		{Name: "BenchmarkRSEncode/k=8", Iterations: 10, NsPerOp: 100},
		{Name: "BenchmarkOther", Iterations: 10, NsPerOp: 10},
	})
	new := writeSnap(t, dir, "new.json", []Benchmark{
		{Name: "BenchmarkOther", Iterations: 10, NsPerOp: 10},
	})
	if rc := compareSnapshots(old, new, 25, "RSEncode"); rc != 2 {
		t.Fatalf("compare exited %d, want 2 (gate compared nothing)", rc)
	}
}

// GOMAXPROCS suffixes must not split identities across machines.
func TestNormalizeBenchName(t *testing.T) {
	if got := normalizeBenchName("BenchmarkRSEncode/k=8-16"); got != "BenchmarkRSEncode/k=8" {
		t.Fatalf("normalize = %q", got)
	}
	if got := normalizeBenchName("BenchmarkTable1"); got != "BenchmarkTable1" {
		t.Fatalf("normalize = %q", got)
	}
}
