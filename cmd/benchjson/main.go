// Command benchjson converts `go test -bench` text output (read on stdin)
// into a machine-readable JSON snapshot, the format of the repository's
// BENCH_*.json performance trajectory (see scripts/bench.sh), and compares
// two snapshots for regressions.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -date 2026-07-26 > BENCH_2026-07-26.json
//	benchjson -compare BENCH_old.json BENCH_new.json
//	benchjson -compare -threshold 50 -filter 'RSEncode|Fig' old.json new.json
//
// Compare mode prints a per-benchmark delta table (ns/op) for every name
// present in both snapshots and exits nonzero when any benchmark matching
// -filter (default: the RSEncode and Fig benchmarks, the repository's
// guarded hot paths) slowed down by more than -threshold percent
// (default 25). Benchmarks present in only one snapshot are reported as
// "new" or "removed" and never fail the run on their own — adding a
// benchmark must not break the CI gate — though losing every guarded
// benchmark still does, since that would mean the gate compared nothing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Snapshot is the emitted document.
type Snapshot struct {
	Date       string      `json:"date,omitempty"`
	Note       string      `json:"note,omitempty"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	date := flag.String("date", "", "timestamp recorded in the snapshot")
	note := flag.String("note", "", "free-form note recorded in the snapshot")
	compare := flag.Bool("compare", false, "compare two snapshot files given as arguments instead of reading stdin")
	threshold := flag.Float64("threshold", 25, "compare: max tolerated ns/op regression in percent for guarded benchmarks")
	filter := flag.String("filter", `RSEncode|Fig`, "compare: regexp of benchmark names whose regressions fail the run")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two snapshot files")
			os.Exit(2)
		}
		os.Exit(compareSnapshots(flag.Arg(0), flag.Arg(1), *threshold, *filter))
	}

	snap := Snapshot{Date: *date, Note: *note, GoVersion: runtime.Version()}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			snap.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				snap.Benchmarks = append(snap.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// gomaxprocsSuffix matches the "-N" GOMAXPROCS suffix the testing package
// appends to benchmark names when N != 1.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// normalizeBenchName strips the GOMAXPROCS suffix so snapshots recorded on
// machines with different core counts still match up in compare mode
// ("BenchmarkRSEncode/k=8-4" and "BenchmarkRSEncode/k=8" are the same
// benchmark).
func normalizeBenchName(name string) string {
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

// loadSnapshot reads one BENCH_*.json document.
func loadSnapshot(path string) (Snapshot, error) {
	var snap Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return snap, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}

// compareSnapshots loads two snapshots, prints the ns/op delta for every
// benchmark present in both — plus "new"/"removed" rows for names present
// in only one — and returns the process exit code: 1 when a benchmark
// matching the filter regressed past the threshold, 0 otherwise. Only
// benchmarks present in both snapshots can fail the gate; new and removed
// ones are informational, so growing the suite never breaks CI.
func compareSnapshots(oldPath, newPath string, thresholdPct float64, filter string) int {
	re, err := regexp.Compile(filter)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: bad -filter:", err)
		return 2
	}
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	oldBy := map[string]Benchmark{}
	for _, b := range oldSnap.Benchmarks {
		oldBy[normalizeBenchName(b.Name)] = b
	}
	names := make([]string, 0, len(newSnap.Benchmarks))
	var added []string
	newBy := map[string]Benchmark{}
	for _, b := range newSnap.Benchmarks {
		name := normalizeBenchName(b.Name)
		newBy[name] = b
		if _, ok := oldBy[name]; ok {
			names = append(names, name)
		} else {
			added = append(added, name)
		}
	}
	var removed []string
	for _, b := range oldSnap.Benchmarks {
		name := normalizeBenchName(b.Name)
		if _, ok := newBy[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(names)
	sort.Strings(added)
	sort.Strings(removed)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: the snapshots share no benchmark names")
		return 2
	}
	fmt.Printf("%-40s %15s %15s %9s %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "guard")
	failed := false
	guardedCompared := 0
	for _, name := range names {
		ob, nb := oldBy[name], newBy[name]
		deltaPct := (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100
		guarded := re.MatchString(name)
		verdict := ""
		if guarded {
			guardedCompared++
			verdict = "ok"
			if deltaPct > thresholdPct {
				verdict = fmt.Sprintf("REGRESSION (> %g%%)", thresholdPct)
				failed = true
			}
		}
		fmt.Printf("%-40s %15.0f %15.0f %+8.1f%% %s\n", name, ob.NsPerOp, nb.NsPerOp, deltaPct, verdict)
	}
	for _, name := range added {
		fmt.Printf("%-40s %15s %15.0f %9s new\n", name, "-", newBy[name].NsPerOp, "")
	}
	for _, name := range removed {
		fmt.Printf("%-40s %15.0f %15s %9s removed\n", name, oldBy[name].NsPerOp, "-", "")
	}
	// A gate that compared nothing is a disabled gate, not a passing one:
	// losing every guarded benchmark (rename, -bench filter drift) must be
	// loud. Losing a subset only warns, since partial runs are a normal way
	// to probe.
	for _, name := range removed {
		if re.MatchString(name) {
			fmt.Fprintf(os.Stderr, "benchjson: warning: guarded benchmark %s missing from %s\n", name, newPath)
		}
	}
	if guardedCompared == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark matching guard filter %q was compared — the regression gate checked nothing\n", filter)
		return 2
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchjson: guarded benchmarks regressed beyond %g%% (filter %q)\n", thresholdPct, filter)
		return 1
	}
	return 0
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkRSEncode/k=8-4  24  45439277 ns/op  184.61 MB/s  8388848 B/op  10 allocs/op
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "MB/s":
			b.MBPerS = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	return b, b.NsPerOp > 0
}
