// Command benchjson converts `go test -bench` text output (read on stdin)
// into a machine-readable JSON snapshot, the format of the repository's
// BENCH_*.json performance trajectory (see scripts/bench.sh).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -date 2026-07-26 > BENCH_2026-07-26.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Snapshot is the emitted document.
type Snapshot struct {
	Date       string      `json:"date,omitempty"`
	Note       string      `json:"note,omitempty"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	date := flag.String("date", "", "timestamp recorded in the snapshot")
	note := flag.String("note", "", "free-form note recorded in the snapshot")
	flag.Parse()

	snap := Snapshot{Date: *date, Note: *note, GoVersion: runtime.Version()}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			snap.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				snap.Benchmarks = append(snap.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkRSEncode/k=8-4  24  45439277 ns/op  184.61 MB/s  8388848 B/op  10 allocs/op
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "MB/s":
			b.MBPerS = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	return b, b.NsPerOp > 0
}
