// Command hcrun regenerates the paper's tables and figures. It is a thin
// client of pkg/hierclust's experiment surface.
//
// Usage:
//
//	hcrun -exp table2              # one experiment at paper scale
//	hcrun -exp all -quick          # every experiment, laptop scale
//	hcrun -exp all -quick -parallel  # pooled runner, identical output
//	hcrun -exp all -quick -json    # machine-readable results
//	hcrun -exp fig5a -out results  # also write PGM/CSV artifacts
//	hcrun -exp scaling -maxranks 65536  # synthetic-trace scaling to 64k ranks
//	hcrun -exp scaling -maxranks 262144 -multilevel  # 256k ranks / 16k nodes,
//	                               # multilevel node partitioner
//	hcrun -list                    # list experiment ids
//	hcrun -sweep grid.json -server http://localhost:8080  # sweep client:
//	                               # submit, poll, stream result NDJSON
//
// -parallel runs the experiments on a GOMAXPROCS-wide worker pool
// (override with -workers); results still print in experiment order, so
// the output is byte-identical to a serial run.
//
// -cpuprofile/-memprofile write pprof profiles covering the experiment
// runs (the heap profile is captured after everything finishes), so
// partition/evaluation profiling needs no ad-hoc harness edits. CPU
// profiles carry goroutine labels for the partitioner's phases
// (phase=match/contract/grow/refine, level=N), so pprof can split time
// by pipeline stage:
//
//	hcrun -exp scaling -maxranks 262144 -multilevel -cpuprofile cpu.prof -memprofile mem.prof
//	go tool pprof -tagfocus phase=refine cpu.prof
//
// Experiments: table1, fig3a, fig3b, fig4a, fig4b, fig4c, fig5a, fig5b,
// fig5c, table2, protocol, ablation, scaling.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"hierclust/pkg/hierclust"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id or 'all'")
		quick      = flag.Bool("quick", false, "shrink to laptop scale")
		maxRanks   = flag.Int("maxranks", 0, "extend the scaling experiment with synthetic traces up to this rank count (doubling from 4096)")
		multilevel = flag.Bool("multilevel", false, "partition node graphs with the multilevel (coarsen/uncoarsen) partitioner in the scaling experiment")
		ranks      = flag.Int("ranks", 0, "override application rank count")
		ppn        = flag.Int("ppn", 0, "override processes per node")
		iters      = flag.Int("iters", 0, "override traced iterations")
		out        = flag.String("out", "", "directory for CSV/PGM artifacts")
		list       = flag.Bool("list", false, "list experiments and exit")
		csvFlag    = flag.Bool("csv", false, "print CSV instead of ASCII tables")
		jsonFlag   = flag.Bool("json", false, "print one JSON document of all results")
		parallel   = flag.Bool("parallel", false, "run experiments concurrently on a worker pool")
		workers    = flag.Int("workers", 0, "worker pool size (implies -parallel; 0 with -parallel = GOMAXPROCS)")
		timings    = flag.Bool("timings", false, "include wall-clock measurement columns (non-deterministic)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (after all experiments) to this file")
		sweepFile  = flag.String("sweep", "", "sweep client mode: submit this sweep JSON document to -server, poll, stream result NDJSON to stdout")
		server     = flag.String("server", "http://localhost:8080", "hcserve base URL for -sweep")
		pollEvery  = flag.Duration("poll", 500*time.Millisecond, "status poll interval for -sweep")
	)
	flag.Parse()

	if *sweepFile != "" {
		if err := runSweepClient(*server, *sweepFile, *pollEvery); err != nil {
			fail(err)
		}
		return
	}

	if *list {
		for _, e := range hierclust.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	// fail exits through os.Exit, which skips deferred functions — flush
	// the profiles explicitly on both paths, or an error in the profiled
	// run (the exact situation worth profiling) would truncate cpu.prof
	// and never write mem.prof.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		// Label partition phases (match/contract/grow/refine, per level)
		// in the profile; the labels allocate, so they are tied to
		// -cpuprofile rather than always on.
		hierclust.SetPartitionPhaseLabels(true)
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		flushProfiles = append(flushProfiles, func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "hcrun:", err)
			}
		})
	}
	if *memprofile != "" {
		path := *memprofile
		flushProfiles = append(flushProfiles, func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hcrun:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hcrun:", err)
			}
		})
	}
	defer runFlushProfiles()

	cfg := hierclust.ExperimentConfig{Ranks: *ranks, ProcsPerNode: *ppn, Iterations: *iters, Quick: *quick, Timings: *timings, MaxRanks: *maxRanks, Multilevel: *multilevel}

	var exps []hierclust.Experiment
	if *exp == "all" {
		exps = hierclust.Experiments()
	} else {
		e, err := hierclust.ExperimentByID(*exp)
		if err != nil {
			fail(err)
		}
		exps = []hierclust.Experiment{e}
	}

	nworkers := 1
	if *parallel || *workers > 0 { // a nonzero -workers implies -parallel
		nworkers = *workers
		if nworkers <= 0 {
			nworkers = hierclust.DefaultExperimentWorkers()
		}
	}

	emit := func(r hierclust.ExperimentResult) {
		if r.Err != nil {
			fail(fmt.Errorf("%s: %w", r.Experiment.ID, r.Err))
		}
		if *csvFlag {
			fmt.Printf("# %s: %s\n%s\n", r.Table.ID, r.Table.Title, r.Table.CSV())
		} else {
			fmt.Println(r.Table.ASCII())
		}
		if *out != "" {
			if err := hierclust.WriteExperimentArtifacts(*out, r.Table, cfg, r.Experiment.ID); err != nil {
				fail(err)
			}
		}
	}

	// Serial non-JSON runs stream each table as it completes and abort at
	// the first failure; pooled and JSON runs batch (JSON is one document,
	// and pooled results must print in experiment order).
	if nworkers <= 1 && !*jsonFlag {
		for _, e := range exps {
			emit(hierclust.RunExperiment(cfg, e))
		}
		return
	}
	results := hierclust.RunExperiments(cfg, exps, nworkers)
	if *jsonFlag {
		doc, err := hierclust.ExperimentResultsJSON(results)
		if err != nil {
			fail(err)
		}
		fmt.Println(string(doc))
		failed := false
		for _, r := range results {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "hcrun: %s: %v\n", r.Experiment.ID, r.Err)
				failed = true
				continue
			}
			if *out != "" {
				if err := hierclust.WriteExperimentArtifacts(*out, r.Table, cfg, r.Experiment.ID); err != nil {
					fail(err)
				}
			}
		}
		if failed {
			runFlushProfiles()
			os.Exit(1)
		}
		return
	}
	for _, r := range results {
		emit(r)
	}
}

// flushProfiles holds the profile finishers; fail runs them before exiting
// so a failed experiment still leaves valid profiles behind.
var flushProfiles []func()

func runFlushProfiles() {
	for _, f := range flushProfiles {
		f()
	}
	flushProfiles = nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hcrun:", err)
	runFlushProfiles()
	os.Exit(1)
}
