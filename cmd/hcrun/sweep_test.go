package main

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestGetWithRetryRidesOutTransientAnswers pins the sweep client's
// retry contract: 503 (with Retry-After) and 502 answers are retried
// with backoff until the server recovers, and the eventual response is
// the healthy one.
func TestGetWithRetryRidesOutTransientAnswers(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
		case 2:
			w.WriteHeader(http.StatusBadGateway)
		default:
			io.WriteString(w, "ok")
		}
	}))
	defer ts.Close()

	resp, err := getWithRetry(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(b) != "ok" {
		t.Fatalf("got %d %q; want 200 ok", resp.StatusCode, b)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d requests; want 3", n)
	}
}

// TestGetWithRetryDoesNotRetryClientErrors: a 404 is the caller's
// problem, not a transient server state.
func TestGetWithRetryDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.NotFound(w, r)
	}))
	defer ts.Close()

	resp, err := getWithRetry(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || calls.Load() != 1 {
		t.Fatalf("status %d after %d calls; want one 404", resp.StatusCode, calls.Load())
	}
}

// tornReader yields its payload, then a connection-reset-style error
// instead of EOF.
type tornReader struct {
	r io.Reader
}

func (tr *tornReader) Read(p []byte) (int, error) {
	n, err := tr.r.Read(p)
	if err == io.EOF {
		return n, errors.New("connection reset by peer")
	}
	return n, err
}

// TestCopySweepLinesResumesWithoutDuplicatesOrTears drives the
// reconnect path: the first stream tears mid-line, the second replays
// the full NDJSON from the top, and the output must be exactly the full
// stream — no duplicated prefix, no partial line from the torn read.
func TestCopySweepLinesResumesWithoutDuplicatesOrTears(t *testing.T) {
	full := `{"index":0,"status":200}` + "\n" +
		`{"index":1,"status":422}` + "\n" +
		`{"index":2,"status":200}` + "\n"
	torn := full[:len(full)/2] // ends mid-line

	var buf bytes.Buffer
	out := bufio.NewWriter(&buf)
	emitted, failed := 0, 0
	err := copySweepLines(&tornReader{strings.NewReader(torn)}, out, &emitted, &failed)
	if err == nil {
		t.Fatal("torn stream did not surface its error")
	}
	if emitted != 1 {
		t.Fatalf("emitted %d complete lines from the torn stream; want 1", emitted)
	}
	if err := copySweepLines(strings.NewReader(full), out, &emitted, &failed); err != nil {
		t.Fatal(err)
	}
	out.Flush()
	if buf.String() != full {
		t.Fatalf("resumed output is not the uninterrupted stream:\n%q\nvs\n%q", buf.String(), full)
	}
	if emitted != 3 || failed != 1 {
		t.Fatalf("emitted %d, failed %d; want 3 lines with 1 failed cell", emitted, failed)
	}
}

func TestParseRetryAfterBounds(t *testing.T) {
	if d := parseRetryAfter("2"); d != 2*time.Second {
		t.Fatalf("parseRetryAfter(2) = %s", d)
	}
	if d := parseRetryAfter("86400"); d != sweepRetryAfterCap {
		t.Fatalf("parseRetryAfter(86400) = %s; want the cap", d)
	}
	for _, bad := range []string{"", "-1", "soon", "Wed, 21 Oct 2015 07:28:00 GMT"} {
		if d := parseRetryAfter(bad); d != 0 {
			t.Fatalf("parseRetryAfter(%q) = %s; want 0", bad, d)
		}
	}
}
