package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

// Sweep client mode: `hcrun -sweep grid.json -server http://host:8080`
// submits the sweep document to an hcserve instance, polls the job to
// completion (progress on stderr), and streams the result NDJSON — one
// line per cell, in deterministic cell order — to stdout. The exit code
// is nonzero if the job does not complete or any cell fails, so the mode
// composes with shell pipelines:
//
//	hcrun -sweep grid.json -server http://localhost:8080 | jq -r '.scenario'

// sweepClientStatus mirrors the fields of hcserve's sweep status document
// that the client needs; unknown fields are ignored so the client stays
// compatible as the document grows.
type sweepClientStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Cells struct {
		Total  int `json:"total"`
		Done   int `json:"done"`
		Failed int `json:"failed"`
	} `json:"cells"`
	ResultsURL string `json:"results_url"`
}

// runSweepClient drives one sweep job end to end. It returns an error for
// transport problems, a job that ends in any state but "completed", or a
// stream containing failed cells.
func runSweepClient(server, sweepPath string, pollEvery time.Duration) error {
	doc, err := os.ReadFile(sweepPath)
	if err != nil {
		return err
	}
	server = strings.TrimRight(server, "/")

	resp, err := http.Post(server+"/v1/sweeps", "application/json", strings.NewReader(string(doc)))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: server answered %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var st sweepClientStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return fmt.Errorf("submit: decoding status: %w", err)
	}
	fmt.Fprintf(os.Stderr, "hcrun: sweep %s: %d cells\n", st.ID, st.Cells.Total)

	statusURL := server + "/v1/sweeps/" + st.ID
	for st.State == "running" {
		time.Sleep(pollEvery)
		resp, err := http.Get(statusURL)
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("poll: server answered %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		}
		if err := json.Unmarshal(body, &st); err != nil {
			return fmt.Errorf("poll: decoding status: %w", err)
		}
		fmt.Fprintf(os.Stderr, "hcrun: sweep %s: %s, %d/%d cells done\n",
			st.ID, st.State, st.Cells.Done, st.Cells.Total)
	}
	if st.State != "completed" {
		return fmt.Errorf("sweep %s ended %s (%d/%d cells done, %d failed)",
			st.ID, st.State, st.Cells.Done, st.Cells.Total, st.Cells.Failed)
	}

	resp, err = http.Get(statusURL + "/results")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("results: server answered %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}
	// A bufio.Reader, not a Scanner: Scanner caps the line length, and a
	// cell result document bigger than the cap would fail an otherwise
	// successful sweep with ErrTooLong and drop the remaining lines.
	failed := 0
	rd := bufio.NewReader(resp.Body)
	out := bufio.NewWriter(os.Stdout)
	for {
		raw, rerr := rd.ReadBytes('\n')
		if len(raw) > 0 {
			var line struct {
				Status int `json:"status"`
			}
			if err := json.Unmarshal(raw, &line); err == nil && line.Status != http.StatusOK {
				failed++
			}
			out.Write(raw)
			if raw[len(raw)-1] != '\n' {
				out.WriteByte('\n')
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			out.Flush()
			return fmt.Errorf("results: reading stream: %w", rerr)
		}
	}
	if err := out.Flush(); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("sweep %s: %d cells failed (lines above carry per-cell errors)", st.ID, failed)
	}
	return nil
}
