package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

// Sweep client mode: `hcrun -sweep grid.json -server http://host:8080`
// submits the sweep document to an hcserve instance, polls the job to
// completion (progress on stderr), and streams the result NDJSON — one
// line per cell, in deterministic cell order — to stdout. The exit code
// is nonzero if the job does not complete or any cell fails, so the mode
// composes with shell pipelines:
//
//	hcrun -sweep grid.json -server http://localhost:8080 | jq -r '.scenario'
//
// Polls and result streaming are idempotent GETs, so the client rides out
// transient failures — connection refused/reset while the server restarts,
// 502/503 answers from a draining server or a proxy in front of it — with
// capped-backoff retries that honor Retry-After. Against a server running
// with -sweep-journal, that means a sweep submitted before a crash streams
// its results after the restart without the client noticing beyond the
// pause. The submit POST is not idempotent and is never retried.

// sweepClientStatus mirrors the fields of hcserve's sweep status document
// that the client needs; unknown fields are ignored so the client stays
// compatible as the document grows.
type sweepClientStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Cells struct {
		Total  int `json:"total"`
		Done   int `json:"done"`
		Failed int `json:"failed"`
	} `json:"cells"`
	ResultsURL string `json:"results_url"`
}

// Retry policy for idempotent GETs: capped doubling backoff, bounded
// attempts, and an upper bound on how long a Retry-After answer can stall
// one attempt.
const (
	sweepRetryAttempts = 8
	sweepRetryBase     = 100 * time.Millisecond
	sweepRetryCap      = 2 * time.Second
	sweepRetryAfterCap = 5 * time.Second
)

// transientStatus reports whether an HTTP status signals a temporarily
// unavailable server rather than a request the client got wrong.
func transientStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable
}

// parseRetryAfter reads a delay-seconds Retry-After value, bounded so a
// misbehaving server cannot stall the client arbitrarily.
func parseRetryAfter(h string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || secs < 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > sweepRetryAfterCap {
		d = sweepRetryAfterCap
	}
	return d
}

// getWithRetry GETs url, retrying transport errors and transient statuses
// (502/503, honoring Retry-After) with capped backoff. Any response it
// returns has a non-transient status; the body is open and the caller's
// to close.
func getWithRetry(url string) (*http.Response, error) {
	delay := sweepRetryBase
	for attempt := 1; ; attempt++ {
		resp, err := http.Get(url)
		if err == nil && !transientStatus(resp.StatusCode) {
			return resp, nil
		}
		wait := delay
		if err == nil {
			if ra := parseRetryAfter(resp.Header.Get("Retry-After")); ra > wait {
				wait = ra
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			err = fmt.Errorf("server answered %d", resp.StatusCode)
		}
		if attempt >= sweepRetryAttempts {
			return nil, fmt.Errorf("after %d attempts: %w", attempt, err)
		}
		fmt.Fprintf(os.Stderr, "hcrun: transient failure (%v); retrying in %s\n", err, wait)
		time.Sleep(wait)
		if delay *= 2; delay > sweepRetryCap {
			delay = sweepRetryCap
		}
	}
}

// copySweepLines streams NDJSON result lines from r to out, skipping the
// first *emitted lines (already written before a reconnect — cell order
// is deterministic, so the stream prefix is identical) and counting
// failed cells. A partial trailing line is emitted only at EOF; a torn
// read mid-line returns the error with nothing partial written, so the
// caller can resume from a fresh connection.
func copySweepLines(r io.Reader, out *bufio.Writer, emitted, failed *int) error {
	// A bufio.Reader, not a Scanner: Scanner caps the line length, and a
	// cell result document bigger than the cap would fail an otherwise
	// successful sweep with ErrTooLong and drop the remaining lines.
	rd := bufio.NewReader(r)
	skip := *emitted
	for {
		raw, rerr := rd.ReadBytes('\n')
		complete := len(raw) > 0 && raw[len(raw)-1] == '\n'
		if len(raw) > 0 && (complete || rerr == io.EOF) {
			if skip > 0 {
				skip--
			} else {
				var line struct {
					Status int `json:"status"`
				}
				if err := json.Unmarshal(raw, &line); err == nil && line.Status != http.StatusOK {
					*failed++
				}
				out.Write(raw)
				if !complete {
					out.WriteByte('\n')
				}
				*emitted++
			}
		}
		if rerr == io.EOF {
			return nil
		}
		if rerr != nil {
			return rerr
		}
	}
}

// runSweepClient drives one sweep job end to end. It returns an error for
// a failed submit, transport problems that outlast the retry budget, a
// job that ends in any state but "completed", or a stream containing
// failed cells.
func runSweepClient(server, sweepPath string, pollEvery time.Duration) error {
	doc, err := os.ReadFile(sweepPath)
	if err != nil {
		return err
	}
	server = strings.TrimRight(server, "/")

	resp, err := http.Post(server+"/v1/sweeps", "application/json", strings.NewReader(string(doc)))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: server answered %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var st sweepClientStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return fmt.Errorf("submit: decoding status: %w", err)
	}
	fmt.Fprintf(os.Stderr, "hcrun: sweep %s: %d cells\n", st.ID, st.Cells.Total)

	statusURL := server + "/v1/sweeps/" + st.ID
	for st.State == "running" {
		time.Sleep(pollEvery)
		resp, err := getWithRetry(statusURL)
		if err != nil {
			return fmt.Errorf("poll: %w", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("poll: server answered %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		}
		if err := json.Unmarshal(body, &st); err != nil {
			return fmt.Errorf("poll: decoding status: %w", err)
		}
		fmt.Fprintf(os.Stderr, "hcrun: sweep %s: %s, %d/%d cells done\n",
			st.ID, st.State, st.Cells.Done, st.Cells.Total)
	}
	if st.State != "completed" {
		return fmt.Errorf("sweep %s ended %s (%d/%d cells done, %d failed)",
			st.ID, st.State, st.Cells.Done, st.Cells.Total, st.Cells.Failed)
	}

	emitted, failed := 0, 0
	out := bufio.NewWriter(os.Stdout)
	for attempt := 1; ; attempt++ {
		resp, err := getWithRetry(statusURL + "/results")
		if err != nil {
			out.Flush()
			return fmt.Errorf("results: %w", err)
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			out.Flush()
			return fmt.Errorf("results: server answered %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
		}
		rerr := copySweepLines(resp.Body, out, &emitted, &failed)
		resp.Body.Close()
		if rerr == nil {
			break
		}
		if attempt >= sweepRetryAttempts {
			out.Flush()
			return fmt.Errorf("results: reading stream: %w", rerr)
		}
		fmt.Fprintf(os.Stderr, "hcrun: results stream broke after %d lines (%v); resuming\n", emitted, rerr)
		time.Sleep(sweepRetryBase)
	}
	if err := out.Flush(); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("sweep %s: %d cells failed (lines above carry per-cell errors)", st.ID, failed)
	}
	return nil
}
