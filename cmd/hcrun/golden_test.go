package main

import (
	"flag"
	"os"
	"strings"
	"testing"

	"hierclust/pkg/hierclust"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/all_quick.golden from the current output")

// TestAllQuickGolden pins the exact `hcrun -exp all -quick` output against
// the snapshot taken before the pkg/hierclust API redesign: the rewrite of
// hcrun as a thin client must not change a byte of the paper reproduction.
// Regenerate deliberately with `go test ./cmd/hcrun -update-golden` after a
// change that is supposed to move numbers.
func TestAllQuickGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("traced experiment suite is slow under -short")
	}
	cfg := hierclust.ExperimentConfig{Quick: true}
	var sb strings.Builder
	for _, r := range hierclust.RunExperiments(cfg, hierclust.Experiments(), hierclust.DefaultExperimentWorkers()) {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Experiment.ID, r.Err)
		}
		// Mirror hcrun's emit: Println adds the blank line between tables.
		sb.WriteString(r.Table.ASCII())
		sb.WriteByte('\n')
	}
	got := sb.String()

	const path = "testdata/all_quick.golden"
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("hcrun -exp all -quick output drifted from %s\ngot %d bytes, want %d bytes\nfirst divergence at byte %d\n(run `go test ./cmd/hcrun -update-golden` only if the change is intentional)",
			path, len(got), len(want), firstDiff(got, string(want)))
	}
}

func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
