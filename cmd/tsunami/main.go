// Command tsunami runs the shallow-water simulation standalone, optionally
// under the hybrid fault-tolerance protocol with an injected node failure.
//
// Usage:
//
//	tsunami -ranks 16 -iters 100                 # plain run, prints diagnostics
//	tsunami -ranks 16 -iters 100 -fail-at 42     # inject a node failure
//	tsunami -ranks 16 -ascii                     # render the final wave field
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"hierclust/pkg/hierclust"
)

func main() {
	var (
		ranks     = flag.Int("ranks", 16, "number of slab ranks")
		ppn       = flag.Int("ppn", 4, "ranks per node")
		iters     = flag.Int("iters", 100, "iterations")
		nx        = flag.Int("nx", 128, "grid columns")
		failAt    = flag.Int("fail-at", -1, "iteration to fail a node (-1 = none)")
		failNode  = flag.Int("fail-node", 1, "node to fail")
		ckptEvery = flag.Int("ckpt-every", 10, "checkpoint period (iterations)")
		ascii     = flag.Bool("ascii", false, "render the final wave field")
	)
	flag.Parse()

	params := hierclust.DefaultTsunamiParams(*ranks)
	params.NX = *nx
	params.NY = *ranks * max(2, 64/max(1, *ranks/8))
	if params.NY%*ranks != 0 {
		params.NY = 2 * *ranks
	}
	params.Source = hierclust.TsunamiSource{
		CX: float64(params.NX) / 2, CY: float64(params.NY) / 2,
		Amplitude: 2, Sigma: float64(params.NY) / 16,
	}

	app, err := hierclust.NewTsunamiApp(params)
	if err != nil {
		fail(err)
	}
	mass0, energy0 := app.TotalMass(), app.TotalEnergy()

	if *failAt < 0 {
		if err := app.RunSequential(*iters); err != nil {
			fail(err)
		}
		report(app, params, mass0, energy0, nil)
	} else {
		if *ranks%*ppn != 0 {
			fail(fmt.Errorf("ranks %d not divisible by ppn %d", *ranks, *ppn))
		}
		nodes := *ranks / *ppn
		mach, err := hierclust.Tsubame2().Subset(nodes)
		if err != nil {
			fail(err)
		}
		placement, err := hierclust.Block(mach, *ranks, *ppn)
		if err != nil {
			fail(err)
		}
		// Hierarchical clustering from a synthetic nearest-neighbor trace
		// (one exchange round mirrors the solver's ghost-row pattern).
		m, err := hierclust.SyntheticTrace(*ranks, hierclust.SyntheticOptions{
			Pattern: hierclust.Stencil1D, Iterations: 1, BytesPerMsg: 1000,
		})
		if err != nil {
			fail(err)
		}
		minNodes := 4
		if nodes < 4 {
			minNodes = nodes
		}
		cl, err := hierclust.Hierarchical(m, placement, hierclust.HierOptions{
			MinNodesPerL1: minNodes, SubgroupNodes: minNodes,
		})
		if err != nil {
			fail(err)
		}
		runner, err := hierclust.NewHybridRunner(hierclust.HybridConfig{
			Placement:       placement,
			Clusters:        cl.L1,
			Groups:          cl.Groups,
			CheckpointEvery: *ckptEvery,
			Level:           hierclust.L3Encoded,
		}, app)
		if err != nil {
			fail(err)
		}
		rep, err := runner.Run(*iters, map[int][]hierclust.NodeID{
			*failAt: {hierclust.NodeID(*failNode)},
		})
		if err != nil {
			fail(err)
		}
		report(app, params, mass0, energy0, rep)
	}

	if *ascii {
		fmt.Println(renderField(app, params))
	}
}

func report(app *hierclust.TsunamiApp, params hierclust.TsunamiParams, mass0, energy0 float64, rep *hierclust.HybridReport) {
	mass1, energy1 := app.TotalMass(), app.TotalEnergy()
	fmt.Printf("grid %dx%d, %d ranks\n", params.NX, params.NY, params.Ranks)
	fmt.Printf("mass:   %14.6g -> %14.6g (drift %.2g)\n", mass0, mass1, math.Abs(mass1-mass0)/math.Abs(mass0))
	fmt.Printf("energy: %14.6g -> %14.6g (LxF dissipation)\n", energy0, energy1)
	if rep != nil {
		fmt.Printf("checkpoints: %d, logged %.1f%% of %d bytes\n",
			rep.CheckpointsTaken, rep.LoggedFraction*100, rep.TotalBytes)
		for _, f := range rep.Failures {
			fmt.Printf("failure at iter %d: nodes %v, restarted %d ranks (%.1f%%), replayed %d msgs, re-ran %d iters\n",
				f.Iter, f.Nodes, f.RestartedRanks, f.RestartedFraction*100, f.ReplayedMessages, f.ReExecutedIters)
			for lv, n := range f.RestoreLevels {
				fmt.Printf("  restored %d ranks from %s\n", n, lv)
			}
		}
	}
}

// renderField draws the global η field as ASCII, one character per cell
// block.
func renderField(app *hierclust.TsunamiApp, params hierclust.TsunamiParams) string {
	shades := []byte(" .:-=+*#%@")
	rows := params.NY / params.Ranks
	var peak float64
	for r := 0; r < params.Ranks; r++ {
		for j := 0; j < rows; j++ {
			for i := 0; i < params.NX; i++ {
				if v := math.Abs(app.Solver(r).Eta(j, i)); v > peak {
					peak = v
				}
			}
		}
	}
	if peak == 0 {
		peak = 1
	}
	var sb strings.Builder
	stepY := max(1, params.NY/32)
	stepX := max(1, params.NX/64)
	for gy := 0; gy < params.NY; gy += stepY {
		r, j := gy/rows, gy%rows
		for i := 0; i < params.NX; i += stepX {
			v := math.Abs(app.Solver(r).Eta(j, i)) / peak
			idx := int(v * float64(len(shades)-1))
			sb.WriteByte(shades[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tsunami:", err)
	os.Exit(1)
}
