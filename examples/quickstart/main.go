// Quickstart: build the paper's four clustering strategies for a traced
// application and score them on the four-dimensional optimization space
// (message logging, recovery cost, encoding time, reliability).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hierclust/internal/core"
	"hierclust/internal/reliability"
	"hierclust/internal/topology"
	"hierclust/internal/trace"
	"hierclust/internal/tsunami"
)

func main() {
	// 1. A machine: 32 nodes of the TSUBAME2 model, 8 ranks per node,
	//    consecutive ranks placed on the same node (topology-aware).
	const ranks, ppn = 256, 8
	machine, err := topology.Tsubame2().Subset(ranks / ppn)
	if err != nil {
		log.Fatal(err)
	}
	placement, err := topology.Block(machine, ranks, ppn)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Trace a real application on the message-passing runtime: the
	//    tsunami stencil exchanges boundary rows with ranks ±1.
	params := tsunami.DefaultParams(ranks)
	params.NX, params.NY = 64, 2*ranks
	recorder := trace.NewRecorder(ranks)
	if _, err := tsunami.RunTraced(tsunami.TracedOptions{
		Params:     params,
		Iterations: 25,
		Tracer:     recorder,
	}); err != nil {
		log.Fatal(err)
	}
	matrix := recorder.Matrix()
	fmt.Printf("traced %d messages, %d bytes\n\n", matrix.TotalMsgs(), matrix.TotalBytes())

	// 3. Build the four clusterings of the paper.
	naive, err := core.Naive(ranks, 32)
	if err != nil {
		log.Fatal(err)
	}
	sizeGuided, err := core.SizeGuided(ranks, 8)
	if err != nil {
		log.Fatal(err)
	}
	distributed, err := core.Distributed(ranks, 8)
	if err != nil {
		log.Fatal(err)
	}
	hierarchical, err := core.Hierarchical(matrix, placement, core.HierOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Evaluate all four on the paper's dimensions and print Table II.
	var evals []*core.Evaluation
	for _, c := range []*core.Clustering{naive, sizeGuided, distributed, hierarchical} {
		e, err := core.Evaluate(c, matrix, placement, reliability.DefaultMix())
		if err != nil {
			log.Fatal(err)
		}
		evals = append(evals, e)
	}
	fmt.Print(core.CompareTable(evals, core.DefaultBaseline()))

	fmt.Println("\nhierarchical L1 clusters:", hierarchical.NumClusters(),
		"| L2 encoding groups:", len(hierarchical.Groups),
		"| max group size:", hierarchical.MaxGroupSize())
}
