// Quickstart: evaluate the paper's four clustering strategies on a traced
// application through the declarative scenario API — the same document you
// could POST to hcserve's /v1/evaluate.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"hierclust/pkg/hierclust"
)

func main() {
	// 1. A scenario is data: a machine, a placement, a trace source, and
	//    the strategies to compare. This one is shipped with the package;
	//    build your own Scenario literal (or decode JSON) the same way.
	scenario, err := hierclust.BuiltinScenario("quickstart")
	if err != nil {
		log.Fatal(err)
	}
	doc, err := hierclust.EncodeScenario(scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario document (POST this to hcserve /v1/evaluate):\n%s\n", doc)

	// 2. The pipeline traces the tsunami stencil on the simulated MPI
	//    runtime, builds every strategy's clustering, and scores all four
	//    dimensions. Results are deterministic at any worker count.
	result, err := hierclust.NewPipeline().Run(context.Background(), scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced %d messages, %d bytes across %d ranks on %d nodes\n\n",
		result.TotalMsgs, result.TotalBytes, result.Ranks, result.Nodes)

	// 3. Print a Table-II style comparison.
	fmt.Printf("%-20s %9s %10s %12s %10s %s\n",
		"clustering", "logged %", "restart %", "encode s/GB", "P(cat)", "baseline")
	for _, ev := range result.Evaluations {
		verdict := "ok"
		if !ev.WithinBaseline {
			verdict = "FAIL"
		}
		fmt.Printf("%-20s %9.1f %10.2f %12.1f %10.2g %s\n",
			ev.Strategy, ev.LoggedFraction*100, ev.RecoveryFraction*100,
			ev.EncodeSecondsPerGB, ev.CatastropheProb, verdict)
	}

	// 4. The hierarchical strategy's shape: L1 containment clusters for
	//    the hybrid protocol, L2 encoding groups for erasure coding.
	hier := result.Evaluations[len(result.Evaluations)-1]
	fmt.Println("\nhierarchical L1 clusters:", hier.L1Clusters,
		"| L2 encoding groups:", hier.Groups,
		"| max group size:", hier.MaxGroupSize)
}
