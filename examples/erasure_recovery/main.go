// erasure_recovery: the multi-level checkpoint store under node loss.
// Sixteen ranks on four nodes checkpoint at level L3 (local SSD +
// Reed–Solomon parity across 4-node encoding groups). Two nodes then die —
// half of every group — and the store rebuilds every lost checkpoint from
// the surviving data and parity shards, demonstrating the half-group
// tolerance of the FTI-style RS(k,k) layout.
//
// Run with: go run ./examples/erasure_recovery
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"hierclust/pkg/hierclust"
)

func main() {
	const nodes, ppn = 4, 4
	machine, err := hierclust.Tsubame2().Subset(nodes)
	if err != nil {
		log.Fatal(err)
	}
	placement, err := hierclust.Block(machine, nodes*ppn, ppn)
	if err != nil {
		log.Fatal(err)
	}
	store := hierclust.NewClusterStore(machine)

	// Transversal encoding groups: the i-th rank of each node, exactly the
	// paper's L2 construction. Each group spans all four nodes.
	var groups [][]hierclust.Rank
	for i := 0; i < ppn; i++ {
		var g []hierclust.Rank
		for n := 0; n < nodes; n++ {
			g = append(g, hierclust.Rank(n*ppn+i))
		}
		groups = append(groups, g)
	}
	mgr, err := hierclust.NewCheckpointManager(store, placement, groups)
	if err != nil {
		log.Fatal(err)
	}

	// Checkpoint 2 MiB of state per rank at L3.
	rng := rand.New(rand.NewSource(42))
	data := map[hierclust.Rank][]byte{}
	for r := 0; r < nodes*ppn; r++ {
		blob := make([]byte, 2<<20)
		rng.Read(blob)
		data[hierclust.Rank(r)] = blob
	}
	res, err := mgr.Checkpoint(1, hierclust.L3Encoded, data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed %d ranks at %s\n", len(data), res.Level)
	fmt.Printf("  simulated local SSD write: %v\n", res.LocalWriteTime)
	fmt.Printf("  measured RS encode (slowest group): %v\n", res.EncodeWallTime)
	fmt.Printf("  modeled encode at this checkpoint size: %v\n", res.EncodeModelTime)
	fmt.Printf("  modeled encode at paper scale (1 GB/proc, k=4): %.1fs\n",
		hierclust.ModelEncodeSeconds(nodes, 1e9))

	// Two of four nodes die: every group loses exactly half its shards.
	for _, n := range []hierclust.NodeID{1, 2} {
		if err := store.FailNode(n); err != nil {
			log.Fatal(err)
		}
		if err := store.RepairNode(n); err != nil { // replacement node, empty disk
			log.Fatal(err)
		}
	}
	fmt.Println("nodes 1 and 2 failed and were replaced (local checkpoints lost)")

	// Restore everything.
	var lost []hierclust.Rank
	for r := 0; r < nodes*ppn; r++ {
		lost = append(lost, hierclust.Rank(r))
	}
	restored, err := mgr.Restore(1, lost)
	if err != nil {
		log.Fatal(err)
	}
	byLevel := map[hierclust.CheckpointLevel]int{}
	for _, re := range restored {
		byLevel[re.Level]++
		if !bytes.Equal(re.Data, data[re.Rank]) {
			log.Fatalf("rank %d restored with wrong bytes", re.Rank)
		}
	}
	for lv, n := range byLevel {
		fmt.Printf("restored %d ranks from %s\n", n, lv)
	}
	fmt.Println("all checkpoints verified byte-for-byte")

	// A third node failure exceeds the half-group tolerance.
	_ = store.FailNode(0)
	_ = store.RepairNode(0)
	if _, err := mgr.Restore(1, lost); hierclust.CheckpointUnrecoverable(err) {
		fmt.Println("third node loss: unrecoverable, as the RS(k,k) tolerance predicts")
	} else {
		log.Fatalf("expected unrecoverable failure, got %v", err)
	}
}
