// clustering_explore: the cluster-size trade-off study of the paper's §III
// (Figures 3a/3b) plus the brain-network measures that motivated the
// hierarchical design (§IV-A): modularity and degree distribution of the
// traced communication graph. Uses the lower-level building blocks of
// pkg/hierclust directly, below the scenario API.
//
// Run with: go run ./examples/clustering_explore
package main

import (
	"fmt"
	"log"

	"hierclust/pkg/hierclust"
)

func main() {
	const ranks, ppn = 256, 8
	machine, err := hierclust.Tsubame2().Subset(ranks / ppn)
	if err != nil {
		log.Fatal(err)
	}
	placement, err := hierclust.Block(machine, ranks, ppn)
	if err != nil {
		log.Fatal(err)
	}

	rec := hierclust.NewTraceRecorder(ranks)
	if _, err := hierclust.RunTracedTsunami(hierclust.TracedTsunamiOptions{
		Params: hierclust.TsunamiTraceParams(ranks), Iterations: 30, Tracer: rec,
	}); err != nil {
		log.Fatal(err)
	}
	m := rec.Matrix()

	// The Fig. 3a/3b sweep: cluster size versus the three flat-clustering
	// costs. Watch logging fall, restart rise, and encoding explode.
	fmt.Println("cluster size sweep (naive consecutive-rank clusters):")
	fmt.Printf("%8s %10s %12s %14s\n", "size", "logged %", "restart %", "encode s/GB")
	for size := 2; size <= 64; size *= 2 {
		c, err := hierclust.Naive(ranks, size)
		if err != nil {
			log.Fatal(err)
		}
		logged, err := m.LoggedFraction(c.L1)
		if err != nil {
			log.Fatal(err)
		}
		restart, err := hierclust.RecoveryFraction(c, placement)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %10.2f %12.2f %14.1f\n",
			size, logged*100, restart*100, hierclust.ModelEncodeSeconds(size, 1e9))
	}

	// The brain-network view (§IV-A): the hierarchical L1 partition should
	// score high modularity — "functional segregation" — on the node graph.
	g, err := m.NodeGraph(placement)
	if err != nil {
		log.Fatal(err)
	}
	hier, err := hierclust.Hierarchical(m, placement, hierclust.HierOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// Project the rank-level L1 onto nodes for the modularity measure.
	nodePart := make([]int, len(placement.UsedNodes()))
	for i, n := range placement.UsedNodes() {
		nodePart[i] = hier.L1[placement.RanksOn(n)[0]]
	}
	q, err := g.Modularity(nodePart)
	if err != nil {
		log.Fatal(err)
	}
	flat := make([]int, len(nodePart)) // everything in one community
	q0, err := g.Modularity(flat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnode-graph modularity: hierarchical L1 = %.3f (single cluster = %.3f)\n", q, q0)

	st := g.DegreeDistribution()
	fmt.Printf("node-graph degree distribution: min %d, mean %.2f, max %d\n", st.Min, st.Mean, st.Max)
	fmt.Println("\nhierarchical verdict:")
	hierEval, err := hierclust.Evaluate(hier, m, placement, hierclust.DefaultMix())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(" ", hierEval)
}
