// sweep: a table2-style strategy × machine-size grid run through the
// library sweep API — no server involved. One declarative Sweep value
// expands to a cartesian grid of scenarios, the planner deduplicates the
// shared work (every machine size's trace is built once and fanned out to
// all four strategies), and the executor evaluates the cells on a worker
// pool with bit-identical results at any worker count. The output ranks
// every (machine, strategy) cell by P(catastrophe), the paper's headline
// reliability dimension.
//
// Run with: go run ./examples/sweep
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"sort"

	"hierclust/pkg/hierclust"
)

func main() {
	sw := &hierclust.Sweep{
		Name: "table2-grid",
		Base: hierclust.Scenario{
			Name:      "grid",
			Placement: hierclust.PlacementSpec{ProcsPerNode: 8},
			Trace:     hierclust.TraceSpec{Source: "synthetic", Pattern: "stencil2d", Iterations: 50},
		},
		Axes: hierclust.SweepAxes{
			// Three machine sizes × four strategies = twelve cells, but
			// only three traces and three placements ever get built.
			Machines: []hierclust.MachinePoint{
				{Nodes: 32, Ranks: 256},
				{Nodes: 64, Ranks: 512},
				{Nodes: 128, Ranks: 1024},
			},
			Strategies: [][]hierclust.StrategySpec{
				{{Kind: "naive"}},
				{{Kind: "size-guided"}},
				{{Kind: "distributed"}},
				{{Kind: "hierarchical"}},
			},
		},
	}

	plan, err := hierclust.PlanSweep(sw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned %d cells: %d trace builds for %d trace refs, %d partition builds for %d refs (dedup %.0f%%)\n\n",
		len(plan.Cells), plan.TraceBuilds, plan.TraceRefs,
		plan.PartitionBuilds, plan.PartitionRefs, 100*plan.DedupRatio())

	pl := hierclust.NewPipeline(hierclust.WithTraceCache(hierclust.NewMemoryTraceCache(8)))
	report, err := pl.RunPlannedSweep(context.Background(), plan, hierclust.SweepOptions{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		scenario, strategy string
		nodes              int
		pCat               float64
	}
	var rows []row
	for _, cell := range report.Cells {
		if cell.Err != nil {
			log.Fatalf("%s: %v", cell.Scenario, cell.Err)
		}
		var res hierclust.Result
		if err := json.Unmarshal(cell.Doc, &res); err != nil {
			log.Fatal(err)
		}
		for _, ev := range res.Evaluations {
			rows = append(rows, row{res.Scenario, ev.Strategy, res.Nodes, ev.CatastropheProb})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].pCat < rows[j].pCat })

	fmt.Println("cells ranked by P(catastrophe), best first:")
	fmt.Printf("%4s  %-22s %6s  %-14s %14s\n", "rank", "cell", "nodes", "strategy", "P(catastrophe)")
	for i, r := range rows {
		fmt.Printf("%4d  %-22s %6d  %-14s %14.3e\n", i+1, r.scenario, r.nodes, r.strategy, r.pCat)
	}
}
