// tsunami_ft: the paper's full stack end to end. A tsunami simulation runs
// under the hybrid protocol with hierarchical clustering and multi-level
// checkpointing; halfway through, a compute node dies, taking its local
// checkpoints with it. Only one L1 cluster rolls back; the lost checkpoints
// are rebuilt by Reed–Solomon decode inside the failed cluster's L2 groups;
// inter-cluster messages are replayed from sender logs — and the final wave
// field is bit-identical to a failure-free run.
//
// Run with: go run ./examples/tsunami_ft
package main

import (
	"fmt"
	"log"

	"hierclust/pkg/hierclust"
)

func main() {
	const (
		ranks, ppn = 64, 8 // 8 nodes
		iterations = 40
		ckptEvery  = 8
		failIter   = 27
		failNode   = 3
	)

	machine, err := hierclust.Tsubame2().Subset(ranks / ppn)
	if err != nil {
		log.Fatal(err)
	}
	placement, err := hierclust.Block(machine, ranks, ppn)
	if err != nil {
		log.Fatal(err)
	}

	params := hierclust.DefaultTsunamiParams(ranks)
	params.NX, params.NY = 96, 2*ranks
	params.Source = hierclust.TsunamiSource{CX: 48, CY: float64(ranks), Amplitude: 2, Sigma: 10}

	// Hierarchical clustering from a short communication trace.
	rec := hierclust.NewTraceRecorder(ranks)
	if _, err := hierclust.RunTracedTsunami(hierclust.TracedTsunamiOptions{
		Params: params, Iterations: 5, Tracer: rec,
	}); err != nil {
		log.Fatal(err)
	}
	clustering, err := hierclust.Hierarchical(rec.Matrix(), placement, hierclust.HierOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hierarchical clustering: %d L1 clusters, %d L2 groups of %d\n",
		clustering.NumClusters(), len(clustering.Groups), clustering.MaxGroupSize())

	// The protected run with an injected node failure.
	app, err := hierclust.NewTsunamiApp(params)
	if err != nil {
		log.Fatal(err)
	}
	runner, err := hierclust.NewHybridRunner(hierclust.HybridConfig{
		Placement:       placement,
		Clusters:        clustering.L1,
		Groups:          clustering.Groups,
		CheckpointEvery: ckptEvery,
		Level:           hierclust.L3Encoded,
	}, app)
	if err != nil {
		log.Fatal(err)
	}
	report, err := runner.Run(iterations, map[int][]hierclust.NodeID{
		failIter: {hierclust.NodeID(failNode)},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran %d iterations, %d checkpoints, logged %.1f%% of traffic\n",
		report.Iterations, report.CheckpointsTaken, report.LoggedFraction*100)
	for _, f := range report.Failures {
		fmt.Printf("node %v failed at iteration %d:\n", f.Nodes, f.Iter)
		fmt.Printf("  containment: %d of %d ranks rolled back (%.1f%%)\n",
			f.RestartedRanks, ranks, f.RestartedFraction*100)
		for lv, n := range f.RestoreLevels {
			fmt.Printf("  %d ranks restored from %s\n", n, lv)
		}
		fmt.Printf("  %d messages replayed from sender logs, %d duplicates suppressed, %d iterations re-run\n",
			f.ReplayedMessages, f.SuppressedDuplicates, f.ReExecutedIters)
	}

	// Verify against a failure-free reference.
	ref, err := hierclust.NewTsunamiApp(params)
	if err != nil {
		log.Fatal(err)
	}
	if err := ref.RunSequential(iterations); err != nil {
		log.Fatal(err)
	}
	diffs := 0
	for r := 0; r < ranks; r++ {
		for j := 0; j < app.Solver(r).Rows(); j++ {
			for i := 0; i < params.NX; i++ {
				if app.Solver(r).Eta(j, i) != ref.Solver(r).Eta(j, i) {
					diffs++
				}
			}
		}
	}
	if diffs == 0 {
		fmt.Println("verification: recovered field is bit-identical to the failure-free run")
	} else {
		fmt.Printf("verification FAILED: %d cells differ\n", diffs)
	}
}
