// Package hierclust is the root of a Go reproduction of "Hierarchical
// Clustering Strategies for Fault Tolerance in Large Scale HPC Systems"
// (Bautista-Gomez, Ropars, Maruyama, Cappello, Matsuoka — IEEE CLUSTER
// 2012). The package itself contains only the repository-wide benchmark
// suite (bench_test.go); the code lives underneath:
//
//   - internal/…       the substrates: topology, trace, graph partitioning,
//     erasure coding, checkpointing, message logging, the hybrid protocol,
//     the reliability model, the simulated MPI runtime, the tsunami proxy
//     application, the evaluation harness, and the metrics registry
//   - pkg/hierclust    the public scenario API (strategies, scenarios,
//     pipeline) — the only import path external code should use
//   - pkg/hierclust/serve and cmd/hcserve  the HTTP evaluation service
//   - cmd/hcrun        the paper's tables and figures
//   - examples/…       runnable walkthroughs
//
// docs/ARCHITECTURE.md maps the layers and the data flow between them;
// docs/OPERATIONS.md is the hcserve runbook.
package hierclust
