GO ?= go

.PHONY: all build test race vet fmt bench bench-smoke serve-smoke chaos doccheck profile ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs gofmt (the CI gate).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench records a BENCH_<date>.json snapshot of the full suite
# (BENCH=regexp, BENCHTIME=1s, NOTE="..." to customize).
bench:
	sh scripts/bench.sh

# bench-smoke is the quick CI benchmark: one iteration of the guarded hot
# paths, compared against the latest committed snapshot (the steady-state
# RSEncode kernels and the large-scale partition/evaluation pipelines —
# including the million-node Partition1M/Scaling1M scale proofs — gate at a
# noise-tolerant 300%; Fig* deltas print for inspection). Benchmarks present
# on only one side of the comparison are informational, so snapshots
# recorded before the 1M benchmarks existed still gate cleanly.
bench-smoke:
	$(GO) test -run '^$$' -bench 'RSEncode|Fig|Partition100k|Partition1M|Scaling256k|Scaling1M|MultilevelSerial' -benchmem -benchtime 1x . > smoke.txt
	$(GO) run ./cmd/benchjson < smoke.txt > smoke.json
	baseline=$$(ls BENCH_*.json | sort | tail -1); \
		$(GO) run ./cmd/benchjson -compare -threshold 300 -filter 'RSEncode|Partition100k|Partition1M|Scaling256k|Scaling1M|MultilevelSerial' $$baseline smoke.json; \
		rc=$$?; rm -f smoke.txt smoke.json; exit $$rc

# profile captures CPU + heap profiles of the scaling pipeline at 256k
# synthetic ranks through the multilevel partitioner (override the run with
# PROFILE_ARGS="..."). Inspect with: go tool pprof cpu.prof
PROFILE_ARGS ?= -exp scaling -maxranks 262144 -multilevel
profile:
	$(GO) run ./cmd/hcrun $(PROFILE_ARGS) -cpuprofile cpu.prof -memprofile mem.prof > /dev/null
	@echo "wrote cpu.prof and mem.prof (go tool pprof cpu.prof)"

# serve-smoke boots hcserve and round-trips the quickstart scenario
# through POST /v1/evaluate, the batch endpoint, and /metrics (the CI
# examples-job check).
serve-smoke:
	sh scripts/hcserve_smoke.sh

# chaos runs the fault-injection and cancellation suites under the race
# detector: degraded disk caches, panic isolation, server deadlines,
# cancellation latency, goroutine-leak assertions, and the kill -9
# restart/journal-resume drills (the CI chaos job).
chaos:
	$(GO) test -race -count=1 \
		-run 'Chaos|Cancel|Panic|Degrad|Quarantine|Fault|Timeout|Drain|Restart|Journal' \
		./internal/diskstore/ ./internal/faultinject/ ./internal/reliability/ \
		./pkg/hierclust/ ./pkg/hierclust/serve/

# doccheck fails if any Go package lacks a package doc comment or a
# repo-relative markdown link in README/ROADMAP/CHANGES/docs dangles.
doccheck:
	sh scripts/doccheck.sh

ci: fmt vet build race bench-smoke serve-smoke doccheck
