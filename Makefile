GO ?= go

.PHONY: all build test race vet fmt bench bench-smoke ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs gofmt (the CI gate).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench records a BENCH_<date>.json snapshot of the full suite
# (BENCH=regexp, BENCHTIME=1s, NOTE="..." to customize).
bench:
	sh scripts/bench.sh

# bench-smoke is the quick CI benchmark: one iteration of RS encoding.
bench-smoke:
	$(GO) test -run '^$$' -bench RSEncode -benchtime 1x .

ci: fmt vet build race bench-smoke
